package journal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

const (
	walHeader  = "DJWAL001"
	snapHeader = "DSNAP001"
	walPrefix  = "wal-"
	snapPrefix = "snap-"
	tmpSuffix  = ".tmp"
)

// ErrClosed is returned by Store calls after Close.
var ErrClosed = errors.New("journal: store closed")

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Options tunes a Store.
type Options struct {
	// FsyncEveryRecord makes every Append as durable as AppendSync: the
	// call returns only once the record is fsynced. Kept for the
	// durability-cost ablation; the default batches fsyncs instead, so a
	// crash loses at most one SyncInterval of asynchronous appends.
	FsyncEveryRecord bool
	// SyncInterval is the group-commit cadence for asynchronous appends.
	// Zero defaults to 100ms — wide enough that the fsync cost disappears
	// into the drain (each lost interval is only recomputed work; leases
	// already absorb far longer donor losses), short enough that a crash
	// forfeits a fraction of a second of results.
	SyncInterval time.Duration
	// MaxRecordBytes guards replay against garbage frame lengths (a
	// corrupt uvarint must not allocate gigabytes). Zero defaults to
	// 256 MiB; appends of larger records are rejected.
	MaxRecordBytes int
}

func (o *Options) applyDefaults() {
	if o.SyncInterval <= 0 {
		o.SyncInterval = 100 * time.Millisecond
	}
	if o.MaxRecordBytes <= 0 {
		o.MaxRecordBytes = 256 << 20
	}
}

// Recovered is what Open found on disk: the newest parseable snapshot plus
// every WAL record appended after it, in order.
type Recovered struct {
	// Meta is the snapshot preamble (zero when no snapshot survived).
	Meta Meta
	// Problems are the snapshot's per-problem checkpoints.
	Problems []Snapshot
	// Tail are the WAL records to replay on top of Problems, oldest first.
	Tail []Record
	// Truncated reports that replay stopped at a torn or corrupt frame;
	// everything up to the last good record is still in Tail.
	Truncated bool
	// MaxEpoch is the highest incarnation epoch seen anywhere (records or
	// Meta.EpochSeq); recovery seeds the coordinator's allocator above it.
	MaxEpoch int64
}

// Store is an open journal directory: one live WAL segment accepting
// appends, plus the retired segments and snapshots recovery reads. Appends
// return after an in-memory buffer append — one write syscall per group
// commit, not per record — and the background group-commit loop flushes
// and fsyncs every SyncInterval (AppendSync waits for the commit covering
// its record).
//
// Lock order: syncMu → mu. mu guards the fields and is held across buffer
// flushes but never across an fsync; syncMu serialises fsyncs with segment
// swaps so a rotation can never close a file mid-Sync.
type Store struct {
	dir  string
	opts Options

	syncMu sync.Mutex
	mu     sync.Mutex
	f      *os.File //dist:guardedby mu
	// buf holds frames appended since the last flush; flushLocked writes it
	// to f in one syscall before every fsync, rotation and close. scratch
	// is the reused record-encode buffer.
	//dist:guardedby mu
	buf []byte
	//dist:guardedby mu
	scratch []byte
	gen     uint64 //dist:guardedby mu
	dirty   bool   //dist:guardedby mu
	// waiters are AppendSync callers parked until the next fsync.
	//dist:guardedby mu
	waiters    []chan error
	logBytes   int64 //dist:guardedby mu
	logRecords int   //dist:guardedby mu
	// err is the sticky I/O error: once a write or fsync fails the store
	// refuses further appends rather than journal a gap.
	//dist:guardedby mu
	err    error
	closed bool //dist:guardedby mu

	kick chan struct{}
	stop chan struct{}
	done chan struct{}
}

// Open opens (creating if needed) a journal directory, reads back
// everything recoverable, and starts a fresh WAL generation for new
// appends. Corruption never fails Open: a torn tail is truncated to the
// last good record (Recovered.Truncated) and an unreadable snapshot falls
// back to its predecessor.
func Open(dir string, opts Options) (*Store, *Recovered, error) {
	opts.applyDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	wals, snaps, maxGen, err := scanDir(dir)
	if err != nil {
		return nil, nil, err
	}

	rec := &Recovered{}
	var baseGen uint64
	for i := len(snaps) - 1; i >= 0; i-- {
		meta, problems, serr := readSnapshotFile(filepath.Join(dir, snapName(snaps[i])), opts.MaxRecordBytes)
		if serr != nil {
			continue // bit-flipped or torn snapshot: fall back to the previous one
		}
		rec.Meta, rec.Problems = meta, problems
		baseGen = snaps[i]
		break
	}
	for _, g := range wals {
		if g < baseGen {
			continue // superseded by the snapshot; pruning just hadn't finished
		}
		recs, truncated := readWALFile(filepath.Join(dir, walName(g)), opts.MaxRecordBytes)
		rec.Tail = append(rec.Tail, recs...)
		if truncated {
			// Never apply records past a corrupt region: a fold replayed
			// out of order could half-apply state the snapshot believes
			// consistent. Everything after the last good record is lost
			// work the fleet simply recomputes.
			rec.Truncated = true
			break
		}
	}
	rec.MaxEpoch = rec.Meta.EpochSeq
	for _, p := range rec.Problems {
		if p.Epoch > rec.MaxEpoch {
			rec.MaxEpoch = p.Epoch
		}
	}
	for _, r := range rec.Tail {
		if e := recordEpoch(r); e > rec.MaxEpoch {
			rec.MaxEpoch = e
		}
	}

	s := &Store{
		dir:  dir,
		opts: opts,
		gen:  maxGen + 1,
		kick: make(chan struct{}, 1),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	s.mu.Lock()
	f, err := createWAL(dir, s.gen)
	if err != nil {
		s.mu.Unlock()
		return nil, nil, err
	}
	s.f = f
	s.mu.Unlock()
	go s.syncLoop()
	return s, rec, nil
}

// Append journals one record: it returns after the in-memory buffer
// append, and the group-commit loop makes it durable within one
// SyncInterval (or before return, under Options.FsyncEveryRecord).
func (s *Store) Append(r Record) error { return s.append(r, s.opts.FsyncEveryRecord) }

// AppendSync journals one record and returns only once it is fsynced.
func (s *Store) AppendSync(r Record) error { return s.append(r, true) }

func (s *Store) append(r Record, syncWait bool) error {
	s.mu.Lock()
	if s.err != nil {
		err := s.err
		s.mu.Unlock()
		return err
	}
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	// Encode into the reused scratch buffer and frame straight into buf:
	// the fold hot path allocates nothing per record.
	s.scratch = encodeRecordInto(s.scratch[:0], r)
	body := s.scratch
	if len(body)+16 > s.opts.MaxRecordBytes {
		s.mu.Unlock()
		return fmt.Errorf("journal: record of %d bytes exceeds the %d-byte limit", len(body), s.opts.MaxRecordBytes)
	}
	was := len(s.buf)
	s.buf = binary.AppendUvarint(s.buf, uint64(len(body)))
	s.buf = binary.LittleEndian.AppendUint32(s.buf, crc32.Checksum(body, castagnoli))
	s.buf = append(s.buf, body...)
	s.logBytes += int64(len(s.buf) - was)
	s.logRecords++
	if !syncWait {
		s.dirty = true
		s.mu.Unlock()
		return nil
	}
	w := make(chan error, 1)
	s.waiters = append(s.waiters, w)
	s.mu.Unlock()
	select {
	case s.kick <- struct{}{}:
	default:
	}
	return <-w
}

// flushLocked writes the buffered frames to the live segment in one
// syscall. A write failure is sticky: the store refuses further appends
// rather than journal a gap.
//
//dist:locked mu
func (s *Store) flushLocked() {
	if len(s.buf) == 0 || s.err != nil || s.f == nil {
		return
	}
	if _, werr := s.f.Write(s.buf); werr != nil {
		s.err = fmt.Errorf("journal: append: %w", werr)
	}
	s.buf = s.buf[:0]
}

// LogSize reports the bytes and records appended to the live WAL since the
// last rotation — the numbers the snapshotter's compaction budget watches.
func (s *Store) LogSize() (bytes int64, records int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.logBytes, s.logRecords
}

// Err reports the sticky I/O error, if any append or fsync has failed.
func (s *Store) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Rotate fsyncs and retires the live WAL segment and starts a new
// generation. Callers snapshot their state after rotating and then call
// WriteSnapshot, so every record in the retired segments is covered by the
// snapshot (records appended to the new segment during capture replay
// idempotently on top of it).
func (s *Store) Rotate() error {
	s.syncMu.Lock()
	defer s.syncMu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	if s.closed {
		return ErrClosed
	}
	s.flushLocked()
	if s.err != nil {
		return s.err
	}
	if err := s.f.Sync(); err != nil {
		s.err = fmt.Errorf("journal: rotate fsync: %w", err)
		return s.err
	}
	if err := s.f.Close(); err != nil {
		s.err = fmt.Errorf("journal: rotate close: %w", err)
		s.f = nil
		return s.err
	}
	s.gen++
	f, err := createWAL(s.dir, s.gen)
	if err != nil {
		s.err = err
		s.f = nil
		return err
	}
	s.f = f
	s.logBytes, s.logRecords = 0, 0
	// The retired segment was just fsynced, which covers every parked
	// AppendSync; release them here rather than making them wait for the
	// first fsync of the (empty) new segment.
	for _, w := range s.waiters {
		w <- nil
	}
	s.waiters = nil
	s.dirty = false
	return nil
}

// WriteSnapshot atomically persists a checkpoint (tmp file + fsync +
// rename) under the live generation and prunes every older-generation
// segment it supersedes. Call Rotate first; the snapshot covers everything
// up to (and some of what follows) that rotation.
func (s *Store) WriteSnapshot(meta Meta, problems []Snapshot) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	gen := s.gen
	s.mu.Unlock()

	final := filepath.Join(s.dir, snapName(gen))
	tmp := final + tmpSuffix
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("journal: snapshot: %w", err)
	}
	buf := []byte(snapHeader)
	buf = append(buf, encodeFrame(&meta)...)
	for i := range problems {
		buf = append(buf, encodeFrame(&problems[i])...)
	}
	if _, err := f.Write(buf); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("journal: snapshot: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("journal: snapshot: %w", err)
	}
	if err := syncDir(s.dir); err != nil {
		return err
	}
	s.prune(gen)
	return nil
}

// prune removes every segment of a generation below keep; failures are
// ignored (stale segments are harmless — recovery skips them).
func (s *Store) prune(keep uint64) {
	wals, snaps, _, err := scanDir(s.dir)
	if err != nil {
		return
	}
	for _, g := range wals {
		if g < keep {
			_ = os.Remove(filepath.Join(s.dir, walName(g)))
		}
	}
	for _, g := range snaps {
		if g < keep {
			_ = os.Remove(filepath.Join(s.dir, snapName(g)))
		}
	}
}

// Close flushes, fsyncs and closes the live segment. Idempotent; returns
// the sticky I/O error, if any.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		err := s.err
		s.mu.Unlock()
		return err
	}
	s.closed = true
	s.mu.Unlock()
	close(s.stop)
	<-s.done // the final group commit ran; no waiter is left parked

	s.syncMu.Lock()
	defer s.syncMu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.flushLocked() // closed appends are rejected, so this is already empty
	if s.f != nil {
		if serr := s.f.Sync(); serr != nil && s.err == nil {
			s.err = fmt.Errorf("journal: close fsync: %w", serr)
		}
		if cerr := s.f.Close(); cerr != nil && s.err == nil {
			s.err = fmt.Errorf("journal: close: %w", cerr)
		}
		s.f = nil
	}
	return s.err
}

// syncLoop is the group-commit goroutine: it fsyncs the live segment every
// SyncInterval while dirty, immediately when an AppendSync kicks it, and
// one final time at Close.
func (s *Store) syncLoop() {
	defer close(s.done)
	t := time.NewTicker(s.opts.SyncInterval)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			s.syncNow()
			return
		case <-s.kick:
			s.syncNow()
		case <-t.C:
			s.syncNow()
		}
	}
}

// syncNow runs one group commit: flush the append buffer and snapshot the
// dirty flag and parked waiters under mu, fsync outside it (appends keep
// flowing into the next buffer), then release the waiters with the
// outcome.
func (s *Store) syncNow() {
	s.syncMu.Lock()
	defer s.syncMu.Unlock()
	s.mu.Lock()
	s.flushLocked()
	f := s.f
	waiters := s.waiters
	s.waiters = nil
	need := s.dirty || len(waiters) > 0
	s.dirty = false
	err := s.err
	s.mu.Unlock()
	if err == nil && need && f != nil {
		if serr := f.Sync(); serr != nil {
			err = fmt.Errorf("journal: fsync: %w", serr)
			s.mu.Lock()
			if s.err == nil {
				s.err = err
			}
			s.mu.Unlock()
		}
	}
	for _, w := range waiters {
		w <- err
	}
}

// encodeFrame wraps one record body in the length+CRC framing.
func encodeFrame(r Record) []byte {
	body := encodeRecord(r)
	buf := binary.AppendUvarint(make([]byte, 0, len(body)+16), uint64(len(body)))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(body, castagnoli))
	return append(buf, body...)
}

// parseFrames decodes consecutive frames from data, stopping at the first
// torn or corrupt one (truncated reports that some of data was dropped).
func parseFrames(data []byte, maxRecord int) (recs []Record, truncated bool) {
	off := 0
	for off < len(data) {
		n, ln := binary.Uvarint(data[off:])
		if ln <= 0 || n > uint64(maxRecord) {
			return recs, true
		}
		p := off + ln
		if p+4+int(n) > len(data) || p+4+int(n) < p {
			return recs, true
		}
		crc := binary.LittleEndian.Uint32(data[p : p+4])
		body := data[p+4 : p+4+int(n)]
		if crc32.Checksum(body, castagnoli) != crc {
			return recs, true
		}
		r, err := decodeRecord(body)
		if err != nil {
			return recs, true
		}
		recs = append(recs, r)
		off = p + 4 + int(n)
	}
	return recs, false
}

// readWALFile reads back one WAL segment, tolerating any corruption: a
// missing or garbage file is simply an empty (truncated) one.
func readWALFile(path string, maxRecord int) (recs []Record, truncated bool) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, true
	}
	if len(data) < len(walHeader) || string(data[:len(walHeader)]) != walHeader {
		return nil, true
	}
	return parseFrames(data[len(walHeader):], maxRecord)
}

// readSnapshotFile reads back one snapshot. Unlike WAL segments a snapshot
// is all-or-nothing: it was written atomically, so any parse failure means
// bit rot and the caller falls back to an older generation.
func readSnapshotFile(path string, maxRecord int) (Meta, []Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Meta{}, nil, err
	}
	if len(data) < len(snapHeader) || string(data[:len(snapHeader)]) != snapHeader {
		return Meta{}, nil, errors.New("journal: bad snapshot header")
	}
	recs, truncated := parseFrames(data[len(snapHeader):], maxRecord)
	if truncated {
		return Meta{}, nil, errors.New("journal: corrupt snapshot")
	}
	if len(recs) == 0 {
		return Meta{}, nil, errors.New("journal: snapshot without meta record")
	}
	meta, ok := recs[0].(*Meta)
	if !ok {
		return Meta{}, nil, errors.New("journal: snapshot does not open with a meta record")
	}
	problems := make([]Snapshot, 0, len(recs)-1)
	for _, r := range recs[1:] {
		p, ok := r.(*Snapshot)
		if !ok {
			return Meta{}, nil, fmt.Errorf("journal: unexpected %T record in snapshot", r)
		}
		problems = append(problems, *p)
	}
	return *meta, problems, nil
}

func walName(gen uint64) string  { return fmt.Sprintf("%s%010d", walPrefix, gen) }
func snapName(gen uint64) string { return fmt.Sprintf("%s%010d", snapPrefix, gen) }

// scanDir lists the directory's WAL and snapshot generations (ascending)
// and sweeps leftover tmp files from an interrupted snapshot write.
func scanDir(dir string) (wals, snaps []uint64, maxGen uint64, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("journal: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		if strings.HasSuffix(name, tmpSuffix) {
			_ = os.Remove(filepath.Join(dir, name))
			continue
		}
		if g, ok := parseGen(name, walPrefix); ok {
			wals = append(wals, g)
			if g > maxGen {
				maxGen = g
			}
		} else if g, ok := parseGen(name, snapPrefix); ok {
			snaps = append(snaps, g)
			if g > maxGen {
				maxGen = g
			}
		}
	}
	sort.Slice(wals, func(i, j int) bool { return wals[i] < wals[j] })
	sort.Slice(snaps, func(i, j int) bool { return snaps[i] < snaps[j] })
	return wals, snaps, maxGen, nil
}

func parseGen(name, prefix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) {
		return 0, false
	}
	g, err := strconv.ParseUint(name[len(prefix):], 10, 64)
	if err != nil {
		return 0, false
	}
	return g, true
}

// createWAL starts a fresh segment and makes its directory entry durable.
func createWAL(dir string, gen uint64) (*os.File, error) {
	path := filepath.Join(dir, walName(gen))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: create wal: %w", err)
	}
	if _, err := f.Write([]byte(walHeader)); err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("journal: create wal: %w", err)
	}
	if err := syncDir(dir); err != nil {
		_ = f.Close()
		return nil, err
	}
	return f, nil
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("journal: sync dir: %w", err)
	}
	return nil
}
