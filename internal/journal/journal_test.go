package journal

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

func testOptions() Options {
	return Options{SyncInterval: time.Millisecond}
}

func openT(t *testing.T, dir string) (*Store, *Recovered) {
	t.Helper()
	s, rec, err := Open(dir, testOptions())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s, rec
}

func sampleRecords() []Record {
	return []Record{
		&Submit{ProblemID: "p1", Epoch: 3, Kind: "k/v1", State: []byte("state-1"), Shared: []byte("shared blob")},
		&Fold{ProblemID: "p1", Epoch: 3, UnitID: 1, Payload: []byte("result-1")},
		&Fold{ProblemID: "p1", Epoch: 3, UnitID: 2, Payload: nil},
		&Submit{ProblemID: "p2", Epoch: 4, Kind: "k/v1", State: nil, Shared: nil},
		&Forget{ProblemID: "p2", Epoch: 4},
		&Fold{ProblemID: "p1", Epoch: 3, UnitID: 3, Payload: bytes.Repeat([]byte{0xAB}, 1<<10)},
	}
}

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, rec := openT(t, dir)
	if len(rec.Tail) != 0 || len(rec.Problems) != 0 || rec.Truncated {
		t.Fatalf("fresh dir recovered %+v", rec)
	}
	want := sampleRecords()
	for i, r := range want {
		var err error
		if i%2 == 0 {
			err = s.Append(r)
		} else {
			err = s.AppendSync(r)
		}
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if b, n := s.LogSize(); n != len(want) || b <= 0 {
		t.Fatalf("LogSize = %d bytes, %d records; want %d records", b, n, len(want))
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2, rec2 := openT(t, dir)
	defer s2.Close()
	if rec2.Truncated {
		t.Fatal("clean log reported truncated")
	}
	if !reflect.DeepEqual(rec2.Tail, want) {
		t.Fatalf("recovered tail = %+v\nwant %+v", rec2.Tail, want)
	}
	if rec2.MaxEpoch != 4 {
		t.Fatalf("MaxEpoch = %d, want 4", rec2.MaxEpoch)
	}
}

func TestTornTailTruncates(t *testing.T) {
	dir := t.TempDir()
	s, _ := openT(t, dir)
	want := sampleRecords()
	for _, r := range want {
		if err := s.AppendSync(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	walPath := filepath.Join(dir, walName(1))
	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name   string
		mutate func([]byte) []byte
		// keep is how many leading records must survive (-1: same count
		// as written — corruption past the last record).
		keep int
	}{
		{"truncated-mid-frame", func(b []byte) []byte { return b[:len(b)-3] }, len(want) - 1},
		{"bit-flip-last-record", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[len(c)-1] ^= 0x40
			return c
		}, len(want) - 1},
		{"garbage-appended", func(b []byte) []byte { return append(append([]byte(nil), b...), 0xFF, 0x13, 0x37) }, len(want)},
		{"bit-flip-first-record", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[len(walHeader)+6] ^= 0x01
			return c
		}, 0},
		{"header-smashed", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[0] = 'X'
			return c
		}, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sub := t.TempDir()
			if err := os.WriteFile(filepath.Join(sub, walName(1)), tc.mutate(data), 0o644); err != nil {
				t.Fatal(err)
			}
			s2, rec := openT(t, sub)
			defer s2.Close()
			if len(rec.Tail) != tc.keep {
				t.Fatalf("recovered %d records, want %d", len(rec.Tail), tc.keep)
			}
			if !rec.Truncated && tc.keep != len(want) {
				t.Fatal("corruption not reported as truncated")
			}
			if tc.keep > 0 && !reflect.DeepEqual(rec.Tail, want[:tc.keep]) {
				t.Fatalf("tail is not the written prefix: %+v", rec.Tail)
			}
		})
	}
}

func TestSnapshotCompaction(t *testing.T) {
	dir := t.TempDir()
	s, _ := openT(t, dir)
	for _, r := range sampleRecords() {
		if err := s.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	// The snapshotter's contract: rotate, capture, write.
	if err := s.Rotate(); err != nil {
		t.Fatalf("Rotate: %v", err)
	}
	if b, n := s.LogSize(); b != 0 || n != 0 {
		t.Fatalf("LogSize after rotate = %d, %d; want zeros", b, n)
	}
	snap := []Snapshot{{
		ProblemID: "p1", Epoch: 3, Kind: "k/v1",
		State: []byte("state-after-folds"), Shared: []byte("shared blob"),
		Dispatched: 9, Completed: 3, Reissued: 1,
	}}
	if err := s.WriteSnapshot(Meta{EpochSeq: 7}, snap); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	// Records appended after the rotation land in the tail.
	post := &Fold{ProblemID: "p1", Epoch: 3, UnitID: 9, Payload: []byte("post-snap")}
	if err := s.AppendSync(post); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Generation 1 must be pruned.
	if _, err := os.Stat(filepath.Join(dir, walName(1))); !os.IsNotExist(err) {
		t.Fatalf("wal generation 1 survived compaction: %v", err)
	}

	s2, rec := openT(t, dir)
	defer s2.Close()
	if rec.Meta.EpochSeq != 7 {
		t.Fatalf("Meta.EpochSeq = %d, want 7", rec.Meta.EpochSeq)
	}
	if !reflect.DeepEqual(rec.Problems, snap) {
		t.Fatalf("recovered problems = %+v\nwant %+v", rec.Problems, snap)
	}
	if len(rec.Tail) != 1 || !reflect.DeepEqual(rec.Tail[0], post) {
		t.Fatalf("recovered tail = %+v, want just the post-snapshot fold", rec.Tail)
	}
	if rec.MaxEpoch != 7 {
		t.Fatalf("MaxEpoch = %d, want 7", rec.MaxEpoch)
	}
}

func TestCorruptSnapshotFallsBack(t *testing.T) {
	dir := t.TempDir()
	s, _ := openT(t, dir)
	mk := func(id string, epoch int64) []Snapshot {
		return []Snapshot{{ProblemID: id, Epoch: epoch, Kind: "k/v1", State: []byte(id)}}
	}
	if err := s.Rotate(); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteSnapshot(Meta{EpochSeq: 1}, mk("old", 1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Rotate(); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteSnapshot(Meta{EpochSeq: 2}, mk("new", 2)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// WriteSnapshot(gen 3) pruned gen<3: recreate an older snapshot to
	// fall back to, then flip a bit in the newest.
	newest := filepath.Join(dir, snapName(3))
	older := filepath.Join(dir, snapName(2))
	data, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(older, data, 0o644); err != nil {
		t.Fatal(err)
	}
	data = append([]byte(nil), data...)
	data[len(data)-1] ^= 0x80
	if err := os.WriteFile(newest, data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, rec := openT(t, dir)
	defer s2.Close()
	if len(rec.Problems) != 1 || rec.Problems[0].ProblemID != "new" {
		t.Fatalf("fallback recovered %+v, want the intact copy of the newest snapshot", rec.Problems)
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	dir := t.TempDir()
	s, _ := openT(t, dir)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(&Forget{ProblemID: "x", Epoch: 1}); err == nil {
		t.Fatal("Append after Close succeeded")
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

func TestFsyncEveryRecordMode(t *testing.T) {
	dir := t.TempDir()
	opts := testOptions()
	opts.FsyncEveryRecord = true
	s, _, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range sampleRecords() {
		if err := s.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	_, rec := openT(t, dir)
	if len(rec.Tail) != len(sampleRecords()) {
		t.Fatalf("recovered %d records, want %d", len(rec.Tail), len(sampleRecords()))
	}
}

func TestConcurrentAppends(t *testing.T) {
	dir := t.TempDir()
	s, _ := openT(t, dir)
	const goroutines, per = 8, 50
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			for i := 0; i < per; i++ {
				r := &Fold{ProblemID: "p", Epoch: 1, UnitID: int64(g*per + i)}
				var err error
				if i%10 == 0 {
					err = s.AppendSync(r)
				} else {
					err = s.Append(r)
				}
				if err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}(g)
	}
	for g := 0; g < goroutines; g++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	_, rec := openT(t, dir)
	if len(rec.Tail) != goroutines*per || rec.Truncated {
		t.Fatalf("recovered %d records (truncated=%v), want %d", len(rec.Tail), rec.Truncated, goroutines*per)
	}
}
