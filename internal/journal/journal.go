// Package journal is the coordinator's durability subsystem: a CRC-framed,
// fsync-batched write-ahead log plus atomic snapshots, from which a
// restarted server rebuilds its registered problems.
//
// The design follows the observation that only three coordinator mutations
// matter for recovery — a problem being submitted, a unit result being
// folded, and a problem being forgotten. Lease tables, donor statistics and
// park queues are all soft state the fleet regenerates within one poll
// interval, so none of it is journaled.
//
// On disk a journal directory holds generation-numbered segments:
//
//	wal-<gen>   appended Submit/Fold/Forget records
//	snap-<gen>  one atomically written checkpoint (Meta + Snapshot records)
//
// Every record, in both file kinds, is framed identically:
//
//	uvarint body length | CRC-32C (Castagnoli) of body, little-endian | body
//
// and each file opens with an 8-byte magic header (walHeader / snapHeader).
// A torn or bit-flipped frame fails its CRC, and replay stops at the last
// good record — never a partial application. Compaction rotates the WAL to
// a fresh generation first, then captures problem states, then writes
// snap-<gen> via tmp-file + fsync + rename, and finally prunes every
// segment of an older generation; recovery loads the newest parseable
// snapshot and replays all WAL generations at or above it, so a crash at
// any point between those steps replays to the same state (the server's
// replay is idempotent: a fold for an already-consumed unit is skipped).
package journal

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Record tags, the first byte of every record body.
const (
	tagSubmit   byte = 1
	tagFold     byte = 2
	tagForget   byte = 3
	tagSnapshot byte = 4
	tagMeta     byte = 5
	tagReplica  byte = 6
)

// Record is one typed journal entry. The concrete types are Submit, Fold,
// Forget, Snapshot, Meta and Replica; replay switches on them.
type Record interface{ tag() byte }

// Submit records a durable problem's registration: everything needed to
// re-create the problem from scratch. Field order: ProblemID, Epoch, Kind,
// State, Shared.
type Submit struct {
	// ProblemID is the submitted problem's ID.
	ProblemID string
	// Epoch is the incarnation the coordinator assigned at Submit.
	Epoch int64
	// Kind names the registered durable-DataManager restorer.
	Kind string
	// State is the DataManager's marshalled state at submission.
	State []byte
	// Shared is the problem's shared blob.
	Shared []byte
}

// Fold records one accepted unit result. Field order: ProblemID, Epoch,
// UnitID, Payload.
type Fold struct {
	ProblemID string
	Epoch     int64
	// UnitID is the completed unit.
	UnitID int64
	// Payload is the result payload that was folded.
	Payload []byte
}

// Forget records a problem's eviction. Field order: ProblemID, Epoch.
type Forget struct {
	ProblemID string
	Epoch     int64
}

// Snapshot is one problem's checkpointed state inside a snap-<gen> file.
// Field order: ProblemID, Epoch, Kind, State, Shared, Dispatched,
// Completed, Reissued.
type Snapshot struct {
	ProblemID string
	Epoch     int64
	Kind      string
	// State is the DataManager's marshalled state at capture time.
	State  []byte
	Shared []byte
	// Dispatched/Completed/Reissued carry the problem's unit counters
	// across the restart.
	Dispatched int64
	Completed  int64
	Reissued   int64
}

// Replica records one held replica result of a quorum-verified unit
// (ServerOptions.VerifyFraction): the result reached the coordinator but
// is held out of the fold until quorum agreement. Replay rebuilds the
// unit's verification set from its Replica records; a Fold for the unit
// under the same epoch supersedes them (the quorum resolved before the
// crash). Field order: ProblemID, Epoch, UnitID, Donor, Payload.
type Replica struct {
	ProblemID string
	Epoch     int64
	// UnitID is the verified unit this replica belongs to.
	UnitID int64
	// Donor names the worker that computed this replica.
	Donor string
	// Payload is the held result payload.
	Payload []byte
}

// Meta is the first record of every snapshot file. Field order: EpochSeq.
type Meta struct {
	// EpochSeq is the coordinator's incarnation-counter high-water mark at
	// capture time; recovery seeds its allocator above it so every
	// post-restart epoch fences pre-crash stragglers.
	EpochSeq int64
}

func (*Submit) tag() byte   { return tagSubmit }
func (*Fold) tag() byte     { return tagFold }
func (*Forget) tag() byte   { return tagForget }
func (*Snapshot) tag() byte { return tagSnapshot }
func (*Meta) tag() byte     { return tagMeta }
func (*Replica) tag() byte  { return tagReplica }

// recordEpoch reports the incarnation epoch a record carries (0 for Meta,
// which carries the allocator high-water instead).
func recordEpoch(r Record) int64 {
	switch r := r.(type) {
	case *Submit:
		return r.Epoch
	case *Fold:
		return r.Epoch
	case *Forget:
		return r.Epoch
	case *Snapshot:
		return r.Epoch
	case *Replica:
		return r.Epoch
	}
	return 0
}

func appendBytes(b, p []byte) []byte {
	b = binary.AppendUvarint(b, uint64(len(p)))
	return append(b, p...)
}

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// encodeRecord flattens one record into its body bytes (tag + fields in
// the documented order).
func encodeRecord(r Record) []byte { return encodeRecordInto(nil, r) }

// encodeRecordInto appends the record body to b — the allocation-free
// form the append hot path uses with a reused scratch buffer.
func encodeRecordInto(b []byte, r Record) []byte {
	b = append(b, r.tag())
	switch r := r.(type) {
	case *Submit:
		b = appendString(b, r.ProblemID)
		b = binary.AppendVarint(b, r.Epoch)
		b = appendString(b, r.Kind)
		b = appendBytes(b, r.State)
		b = appendBytes(b, r.Shared)
	case *Fold:
		b = appendString(b, r.ProblemID)
		b = binary.AppendVarint(b, r.Epoch)
		b = binary.AppendVarint(b, r.UnitID)
		b = appendBytes(b, r.Payload)
	case *Forget:
		b = appendString(b, r.ProblemID)
		b = binary.AppendVarint(b, r.Epoch)
	case *Snapshot:
		b = appendString(b, r.ProblemID)
		b = binary.AppendVarint(b, r.Epoch)
		b = appendString(b, r.Kind)
		b = appendBytes(b, r.State)
		b = appendBytes(b, r.Shared)
		b = binary.AppendVarint(b, r.Dispatched)
		b = binary.AppendVarint(b, r.Completed)
		b = binary.AppendVarint(b, r.Reissued)
	case *Meta:
		b = binary.AppendVarint(b, r.EpochSeq)
	case *Replica:
		b = appendString(b, r.ProblemID)
		b = binary.AppendVarint(b, r.Epoch)
		b = binary.AppendVarint(b, r.UnitID)
		b = appendString(b, r.Donor)
		b = appendBytes(b, r.Payload)
	default:
		panic(fmt.Sprintf("journal: encode of unknown record type %T", r))
	}
	return b
}

// decodeRecord parses one record body. The returned record's byte fields
// alias body.
func decodeRecord(body []byte) (Record, error) {
	if len(body) == 0 {
		return nil, errors.New("journal: empty record body")
	}
	d := &decoder{buf: body[1:]}
	var r Record
	switch body[0] {
	case tagSubmit:
		rec := &Submit{}
		rec.ProblemID = d.str()
		rec.Epoch = d.varint()
		rec.Kind = d.str()
		rec.State = d.bytes()
		rec.Shared = d.bytes()
		r = rec
	case tagFold:
		rec := &Fold{}
		rec.ProblemID = d.str()
		rec.Epoch = d.varint()
		rec.UnitID = d.varint()
		rec.Payload = d.bytes()
		r = rec
	case tagForget:
		rec := &Forget{}
		rec.ProblemID = d.str()
		rec.Epoch = d.varint()
		r = rec
	case tagSnapshot:
		rec := &Snapshot{}
		rec.ProblemID = d.str()
		rec.Epoch = d.varint()
		rec.Kind = d.str()
		rec.State = d.bytes()
		rec.Shared = d.bytes()
		rec.Dispatched = d.varint()
		rec.Completed = d.varint()
		rec.Reissued = d.varint()
		r = rec
	case tagMeta:
		rec := &Meta{}
		rec.EpochSeq = d.varint()
		r = rec
	case tagReplica:
		rec := &Replica{}
		rec.ProblemID = d.str()
		rec.Epoch = d.varint()
		rec.UnitID = d.varint()
		rec.Donor = d.str()
		rec.Payload = d.bytes()
		r = rec
	default:
		return nil, fmt.Errorf("journal: unknown record tag %d", body[0])
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(d.buf) {
		return nil, fmt.Errorf("journal: %d trailing bytes after record", len(d.buf)-d.off)
	}
	return r, nil
}

// decoder is a cursor over one record body; the first error sticks and
// zero-values every later read.
type decoder struct {
	buf []byte
	off int
	err error
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.err = errors.New("journal: truncated uvarint")
		return 0
	}
	d.off += n
	return v
}

func (d *decoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf[d.off:])
	if n <= 0 {
		d.err = errors.New("journal: truncated varint")
		return 0
	}
	d.off += n
	return v
}

func (d *decoder) bytes() []byte {
	n := d.uvarint()
	if d.err != nil {
		return nil
	}
	if n > uint64(len(d.buf)-d.off) {
		d.err = fmt.Errorf("journal: byte field of %d exceeds %d remaining", n, len(d.buf)-d.off)
		return nil
	}
	if n == 0 {
		return nil
	}
	p := d.buf[d.off : d.off+int(n)]
	d.off += int(n)
	return p
}

func (d *decoder) str() string { return string(d.bytes()) }
