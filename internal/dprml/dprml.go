// Package dprml implements DPRml (Keane et al. 2004): distributed
// phylogeny reconstruction by maximum likelihood on the paper's system.
//
// The algorithm is stepwise insertion (fastDNAml's strategy, which the
// paper describes as "an already proven tree building algorithm"): start
// from the unique 3-taxon tree; to add taxon k, evaluate inserting it on
// every edge of the current (k-1)-leaf tree (2k-5 candidates), keep the
// maximum-likelihood candidate, and repeat. Each stage's candidate
// evaluations are independent, so they form the work units the distributed
// system parallelises; stages are separated by barriers, which is why a
// single DPRml instance leaves donors idle and biologists run several
// instances concurrently (Figure 2).
package dprml

import (
	"bytes"
	"context"
	"fmt"
	"math"
	"strings"

	"repro/internal/dist"
	"repro/internal/likelihood"
	"repro/internal/phylo"
	"repro/internal/seq"
)

// AlgorithmName is the donor-side registry key.
const AlgorithmName = "dprml/v1"

// Options configures a DPRml run; zero values get sensible defaults.
type Options struct {
	// Model is a likelihood.ModelByName spec, e.g. "HKY85:kappa=2". The
	// wide model menu is one of DPRml's advertised strengths.
	Model string
	// GammaCategories > 1 enables discrete-gamma rate heterogeneity with
	// shape GammaAlpha.
	GammaCategories int
	GammaAlpha      float64
	// AdditionOrder lists taxa in insertion order; empty means alignment
	// row order. (Biologists randomise this per run — the stochastic
	// element behind running several instances.)
	AdditionOrder []string
	// LocalRounds is how many Brent passes optimise the three branches a
	// candidate insertion creates.
	LocalRounds int
	// FinalRounds is how many full branch-length smoothing passes run on
	// the completed topology.
	FinalRounds int
	// BranchTolerance is Brent's x tolerance.
	BranchTolerance float64
	// InitialBranchLength seeds new branches.
	InitialBranchLength float64
}

func (o *Options) applyDefaults() {
	if o.Model == "" {
		o.Model = "HKY85:kappa=2"
	}
	if o.GammaCategories <= 0 {
		o.GammaCategories = 1
	}
	if o.GammaAlpha <= 0 {
		o.GammaAlpha = 0.5
	}
	if o.LocalRounds <= 0 {
		o.LocalRounds = 1
	}
	if o.FinalRounds <= 0 {
		o.FinalRounds = 2
	}
	if o.BranchTolerance <= 0 {
		o.BranchTolerance = 1e-4
	}
	if o.InitialBranchLength <= 0 {
		o.InitialBranchLength = 0.1
	}
}

// sharedData is the per-problem blob donors fetch once.
type sharedData struct {
	AlignmentFasta []byte
	Options        Options
}

// taskUnit is one work unit: evaluate inserting Taxon on each of Edges
// (indices into the deterministic pre-order edge enumeration of Tree), or —
// for the final unit — fully smooth the finished topology.
type taskUnit struct {
	Tree         string
	Taxon        string
	Edges        []int
	FullOptimize bool
	// Kappas, when non-empty, makes the unit a model-parameter scan: score
	// each kappa on the (fixed) Tree and report the best (see kappascan.go).
	Kappas []float64
	// Rounds overrides Options.FinalRounds for FullOptimize units (the
	// triplet warm-up uses a single pass, matching the sequential
	// reference).
	Rounds int
}

// taskResult reports the best candidate of a unit.
type taskResult struct {
	BestEdge int
	BestLogL float64
	BestTree string
	// BestKappa is set by kappa-scan units.
	BestKappa float64
}

// TreeResult is the decoded final answer.
type TreeResult struct {
	Newick string
	LogL   float64
}

// evalContext is the donor-side ML machinery shared by the distributed
// algorithm and the sequential reference implementation.
type evalContext struct {
	eval *likelihood.Evaluator
	opts Options
	aln  *seq.Alignment
	data *likelihood.CompressedAlignment
}

func newEvalContext(aln *seq.Alignment, opts Options) (*evalContext, error) {
	opts.applyDefaults()
	model, err := likelihood.ModelByName(opts.Model)
	if err != nil {
		return nil, err
	}
	rates := likelihood.UniformRates()
	if opts.GammaCategories > 1 {
		rates, err = likelihood.DiscreteGamma(opts.GammaAlpha, opts.GammaCategories)
		if err != nil {
			return nil, err
		}
	}
	data := likelihood.Compress(aln)
	eval, err := likelihood.NewEvaluator(model, rates, data)
	if err != nil {
		return nil, err
	}
	return &evalContext{eval: eval, opts: opts, aln: aln, data: data}, nil
}

// scoreInsertion clones the tree, inserts taxon on edge idx, optimises the
// three branches the insertion created, and returns (logL, resulting tree).
func (c *evalContext) scoreInsertion(base *phylo.Tree, taxon string, idx int) (float64, *phylo.Tree, error) {
	work := base.Clone()
	edges := work.Edges()
	if idx < 0 || idx >= len(edges) {
		return 0, nil, fmt.Errorf("dprml: edge index %d out of range (%d edges)", idx, len(edges))
	}
	leaf, err := work.InsertLeafOnEdge(edges[idx], taxon, c.opts.InitialBranchLength)
	if err != nil {
		return 0, nil, err
	}
	mid := leaf.Parent
	// The three branches created/split by the insertion: the new leaf's,
	// the mid node's (upper half) and the original child's (lower half).
	locals := []*phylo.Node{leaf, mid, mid.Children[0]}
	ll, err := c.eval.OptimizeLocal(work, locals, c.opts.LocalRounds, c.opts.BranchTolerance)
	if err != nil {
		return 0, nil, err
	}
	return ll, work, nil
}

// better reports whether candidate (ll, edge) beats the incumbent —
// higher likelihood wins, ties break to the lower edge index so results
// are independent of unit batching and arrival order.
func better(ll float64, edge int, bestLL float64, bestEdge int) bool {
	if ll != bestLL {
		return ll > bestLL
	}
	return edge < bestEdge
}

// Algorithm is the donor-side computation. It implements the typed
// dist.TypedAlgorithm[sharedData, taskUnit, taskResult]; the adapter owns
// the gob codec.
type Algorithm struct {
	ctx *evalContext
}

var _ dist.TypedAlgorithm[sharedData, taskUnit, taskResult] = (*Algorithm)(nil)

// Init implements dist.TypedAlgorithm.
func (a *Algorithm) Init(sd sharedData) error {
	aln, err := seq.ReadAlignmentFASTA(bytes.NewReader(sd.AlignmentFasta))
	if err != nil {
		return err
	}
	ctx, err := newEvalContext(aln, sd.Options)
	if err != nil {
		return err
	}
	a.ctx = ctx
	return nil
}

// ProcessCtx implements dist.TypedAlgorithm. Cancellation is checked
// between candidate evaluations (per edge, per kappa), so a server-side
// Forget aborts the unit within one likelihood optimisation.
func (a *Algorithm) ProcessCtx(ctx context.Context, u taskUnit) (taskResult, error) {
	base, err := phylo.ParseNewick(u.Tree)
	if err != nil {
		return taskResult{}, fmt.Errorf("dprml: unit tree: %w", err)
	}
	if len(u.Kappas) > 0 {
		return a.ctx.scanKappas(ctx, base, u.Kappas)
	}
	if u.FullOptimize {
		if err := ctx.Err(); err != nil {
			return taskResult{}, err
		}
		rounds := u.Rounds
		if rounds <= 0 {
			rounds = a.ctx.opts.FinalRounds
		}
		ll, err := a.ctx.eval.OptimizeBranchLengths(base, rounds, a.ctx.opts.BranchTolerance)
		if err != nil {
			return taskResult{}, err
		}
		return taskResult{BestEdge: -1, BestLogL: ll, BestTree: base.String()}, nil
	}
	best := taskResult{BestEdge: -1, BestLogL: math.Inf(-1)}
	for _, idx := range u.Edges {
		if err := ctx.Err(); err != nil {
			return taskResult{}, err
		}
		ll, tree, err := a.ctx.scoreInsertion(base, u.Taxon, idx)
		if err != nil {
			return taskResult{}, err
		}
		if best.BestEdge < 0 || better(ll, idx, best.BestLogL, best.BestEdge) {
			best = taskResult{BestEdge: idx, BestLogL: ll, BestTree: tree.String()}
		}
	}
	if best.BestEdge < 0 {
		return taskResult{}, fmt.Errorf("dprml: unit had no edges")
	}
	return best, nil
}

func init() {
	dist.RegisterTypedAlgorithm(AlgorithmName, func() dist.TypedAlgorithm[sharedData, taskUnit, taskResult] {
		return &Algorithm{}
	})
}

// BuildTreeLocal is the sequential reference implementation of the full
// stepwise-insertion algorithm — the single-machine program DPRml
// distributes. Used for validation and as the baseline in benchmarks.
func BuildTreeLocal(aln *seq.Alignment, opts Options) (*TreeResult, error) {
	order, err := additionOrder(aln, opts)
	if err != nil {
		return nil, err
	}
	ctx, err := newEvalContext(aln, opts)
	if err != nil {
		return nil, err
	}
	tree := phylo.Triplet(order[0], order[1], order[2], ctx.opts.InitialBranchLength)
	if _, err := ctx.eval.OptimizeBranchLengths(tree, 1, ctx.opts.BranchTolerance); err != nil {
		return nil, err
	}
	for _, taxon := range order[3:] {
		nEdges := len(tree.Edges())
		bestEdge, bestLL := -1, math.Inf(-1)
		var bestTree *phylo.Tree
		for idx := 0; idx < nEdges; idx++ {
			ll, cand, err := ctx.scoreInsertion(tree, taxon, idx)
			if err != nil {
				return nil, err
			}
			if bestEdge < 0 || better(ll, idx, bestLL, bestEdge) {
				bestEdge, bestLL, bestTree = idx, ll, cand
			}
		}
		tree = bestTree
	}
	ll, err := ctx.eval.OptimizeBranchLengths(tree, ctx.opts.FinalRounds, ctx.opts.BranchTolerance)
	if err != nil {
		return nil, err
	}
	return &TreeResult{Newick: tree.String(), LogL: ll}, nil
}

func additionOrder(aln *seq.Alignment, opts Options) ([]string, error) {
	order := opts.AdditionOrder
	if len(order) == 0 {
		order = aln.Taxa()
	}
	if len(order) < 3 {
		return nil, fmt.Errorf("dprml: need at least 3 taxa, got %d", len(order))
	}
	seen := make(map[string]bool, len(order))
	for _, t := range order {
		if aln.Row(t) == nil {
			return nil, fmt.Errorf("dprml: taxon %q not in alignment", t)
		}
		if seen[t] {
			return nil, fmt.Errorf("dprml: duplicate taxon %q in addition order", t)
		}
		seen[t] = true
	}
	if len(order) != aln.NTaxa() {
		return nil, fmt.Errorf("dprml: addition order lists %d of %d taxa", len(order), aln.NTaxa())
	}
	return order, nil
}

// DecodeResult unpacks a completed problem's final payload.
func DecodeResult(payload []byte) (*TreeResult, error) {
	r, err := dist.Decode[TreeResult](payload)
	if err != nil {
		return nil, err
	}
	return &r, nil
}

// FormatTree pretty-prints a result for reports.
func (r *TreeResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "logL = %.4f\n%s\n", r.LogL, r.Newick)
	return b.String()
}
