package dprml

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/dist"
	"repro/internal/phylo"
	"repro/internal/sched"
	"repro/internal/seq"
)

// Nonparametric bootstrap analysis (Felsenstein 1985) on the distributed
// system: B column-resampled replicates of the alignment are submitted as
// B concurrent DPRml instances — the same shape as Figure 2's "6 problems
// simultaneously", which is exactly why the multi-instance pattern matters
// in practice — and the replicate trees are summarised as a majority-rule
// consensus whose branch "lengths" are bootstrap support fractions.

// BootstrapResult is the outcome of a bootstrap analysis.
type BootstrapResult struct {
	// Consensus is the majority-rule consensus of the replicate trees;
	// internal branch lengths are support fractions in [0.5, 1].
	Consensus *phylo.Tree
	// Replicates holds each replicate's final tree.
	Replicates []*TreeResult
	// Support maps each consensus bipartition to its replicate fraction.
	Support map[phylo.Bipartition]float64
}

// Bootstrap runs B bootstrap replicates of a DPRml build concurrently on
// nWorkers in-process workers and returns the consensus. Seeds the column
// resampling with seed, seed+1, ... so runs are reproducible. Cancelling
// ctx abandons the analysis.
func Bootstrap(ctx context.Context, aln *seq.Alignment, opts Options, b, nWorkers int, policy sched.Policy, seed int64) (*BootstrapResult, error) {
	if b < 2 {
		return nil, fmt.Errorf("dprml: bootstrap needs >= 2 replicates, got %d", b)
	}
	if nWorkers < 1 {
		nWorkers = 1
	}
	srv := dist.NewServer(
		dist.WithPolicy(policy),
		dist.WithLeaseTTL(time.Hour),
		dist.WithExpiryScan(time.Hour),
		dist.WithWaitHint(time.Millisecond),
	)
	defer srv.Close()

	ids := make([]string, b)
	for i := 0; i < b; i++ {
		rep, err := seq.BootstrapAlignment(aln, seed+int64(i))
		if err != nil {
			return nil, err
		}
		p, err := NewProblem(fmt.Sprintf("bootstrap-%03d", i), rep, opts)
		if err != nil {
			return nil, fmt.Errorf("dprml: replicate %d: %w", i, err)
		}
		if err := srv.Submit(ctx, p); err != nil {
			return nil, err
		}
		ids[i] = p.ID
	}

	var wg sync.WaitGroup
	donors := make([]*dist.Donor, nWorkers)
	for i := range donors {
		donors[i] = dist.NewDonor(srv, dist.WithName(fmt.Sprintf("bs-w%d", i)))
		wg.Add(1)
		go func(d *dist.Donor) { defer wg.Done(); _ = d.Run(ctx) }(donors[i])
	}
	defer func() {
		for _, d := range donors {
			d.Stop()
		}
		wg.Wait()
	}()

	res := &BootstrapResult{Replicates: make([]*TreeResult, b)}
	trees := make([]*phylo.Tree, b)
	for i, id := range ids {
		out, err := srv.Wait(ctx, id)
		if err != nil {
			return nil, fmt.Errorf("dprml: replicate %d failed: %w", i, err)
		}
		tr, err := DecodeResult(out)
		if err != nil {
			return nil, err
		}
		res.Replicates[i] = tr
		trees[i], err = phylo.ParseNewick(tr.Newick)
		if err != nil {
			return nil, err
		}
	}

	support, err := phylo.SplitSupport(trees)
	if err != nil {
		return nil, err
	}
	cons, err := phylo.MajorityRuleConsensus(trees)
	if err != nil {
		return nil, err
	}
	res.Consensus = cons
	res.Support = make(map[phylo.Bipartition]float64)
	for s := range cons.Bipartitions() {
		res.Support[s] = support[s]
	}
	return res, nil
}
