package dprml

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/dist"
	"repro/internal/phylo"
	"repro/internal/sched"
)

// TestMultiInstanceConcurrent runs three DPRml instances (distinct addition
// orders) concurrently on one server — the Figure 2 usage pattern on the
// real (non-simulated) framework — and checks each matches its own
// sequential reference bit-for-bit.
func TestMultiInstanceConcurrent(t *testing.T) {
	aln, _ := simAlignment(t, 6, 250, 77)
	opts := testOpts()
	taxa := aln.Taxa()
	orders := [][]string{
		nil,
		{taxa[5], taxa[4], taxa[3], taxa[2], taxa[1], taxa[0]},
		{taxa[2], taxa[0], taxa[4], taxa[1], taxa[5], taxa[3]},
	}

	// Sequential references.
	refs := make([]*TreeResult, len(orders))
	for i, ord := range orders {
		o := opts
		o.AdditionOrder = ord
		ref, err := BuildTreeLocal(aln, o)
		if err != nil {
			t.Fatal(err)
		}
		refs[i] = ref
	}

	ctx := context.Background()
	srv := dist.NewServer(
		dist.WithPolicy(sched.Adaptive{Target: 50 * time.Millisecond, Bootstrap: 2000, Min: 1}),
		dist.WithLeaseTTL(time.Hour),
		dist.WithExpiryScan(time.Hour),
		dist.WithWaitHint(time.Millisecond),
	)
	defer srv.Close()
	for i, ord := range orders {
		o := opts
		o.AdditionOrder = ord
		p, err := NewProblem(fmt.Sprintf("multi-%d", i), aln, o)
		if err != nil {
			t.Fatal(err)
		}
		if err := srv.Submit(ctx, p); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	var donors []*dist.Donor
	for i := 0; i < 4; i++ {
		d := dist.NewDonor(srv, dist.WithName(fmt.Sprintf("w%d", i)))
		donors = append(donors, d)
		wg.Add(1)
		go func() { defer wg.Done(); _ = d.Run(ctx) }()
	}

	for i := range orders {
		out, err := srv.Wait(ctx, fmt.Sprintf("multi-%d", i))
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecodeResult(out)
		if err != nil {
			t.Fatal(err)
		}
		gt, err := phylo.ParseNewick(got.Newick)
		if err != nil {
			t.Fatal(err)
		}
		rt, _ := phylo.ParseNewick(refs[i].Newick)
		if !phylo.SameTopology(gt, rt) {
			t.Errorf("instance %d: topology differs from its sequential reference", i)
		}
		if diff := got.LogL - refs[i].LogL; diff > 1e-6 || diff < -1e-6 {
			t.Errorf("instance %d: logL %g vs reference %g", i, got.LogL, refs[i].LogL)
		}
	}

	// All donors contributed (round-robin spreads the stage work).
	for _, d := range donors {
		d.Stop()
	}
	wg.Wait()
	working := 0
	for _, d := range donors {
		if d.Units() > 0 {
			working++
		}
	}
	if working < 2 {
		t.Errorf("only %d of 4 donors did any work in the multi-instance run", working)
	}
}
