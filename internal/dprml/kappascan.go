package dprml

import (
	"context"
	"fmt"
	"math"

	"repro/internal/dist"
	"repro/internal/likelihood"
	"repro/internal/phylo"
	"repro/internal/seq"
)

// Distributed model-parameter estimation: a second DPRml problem family
// demonstrating the framework's "more generalisable problems" claim. The
// transition/transversion ratio kappa is estimated by scanning a grid of
// candidate values on a fixed tree; each grid point is an independent
// likelihood evaluation, so the DataManager hands donors batches of
// kappas and keeps the best. Donors reuse the DPRml Algorithm (the unit
// carries the kappa batch), so any donor binary that can build trees can
// also fit models.

// KappaScanResult is the decoded final answer of a kappa scan.
type KappaScanResult struct {
	Kappa float64
	LogL  float64
}

// KappaScanDM distributes a kappa grid scan. Implements the typed
// dist.TypedDM[taskUnit, taskResult] plus dist.CostReporter and
// dist.Progresser.
type KappaScanDM struct {
	tree string
	grid []float64
	cost int64 // per-evaluation cost (tree size x sites)

	next     int
	consumed int
	unitSeq  int64
	pending  map[int64][]float64
	bestK    float64
	bestLL   float64
}

var (
	_ dist.TypedDM[taskUnit, taskResult] = (*KappaScanDM)(nil)
	_ dist.CostReporter                  = (*KappaScanDM)(nil)
	_ dist.Progresser                    = (*KappaScanDM)(nil)
)

// KappaGrid builds a log-spaced grid of n kappa candidates in [lo, hi].
func KappaGrid(lo, hi float64, n int) ([]float64, error) {
	if lo <= 0 || hi <= lo || n < 2 {
		return nil, fmt.Errorf("dprml: bad kappa grid [%g, %g] x %d", lo, hi, n)
	}
	out := make([]float64, n)
	step := (math.Log(hi) - math.Log(lo)) / float64(n-1)
	for i := range out {
		out[i] = math.Exp(math.Log(lo) + float64(i)*step)
	}
	return out, nil
}

// NewKappaScanProblem assembles a distributed kappa estimation over the
// given fixed tree (typically neighbor joining). Base frequencies are
// empirical; Options supplies gamma settings (Model is ignored — the scan
// is over HKY85 by construction).
func NewKappaScanProblem(id string, aln *seq.Alignment, tree *phylo.Tree, grid []float64, opts Options) (*dist.Problem, error) {
	if len(grid) < 2 {
		return nil, fmt.Errorf("dprml: kappa grid needs >= 2 points, got %d", len(grid))
	}
	for _, k := range grid {
		if k <= 0 {
			return nil, fmt.Errorf("dprml: kappa %g must be positive", k)
		}
	}
	if tree == nil || tree.NLeaves() != aln.NTaxa() {
		return nil, fmt.Errorf("dprml: scan tree does not cover the alignment")
	}
	opts.applyDefaults()
	opts.Model = "HKY85:kappa=2" // donors rebuild per-kappa models; validated here
	var fasta []byte
	{
		var buf writerBuf
		if err := seq.WriteFASTA(&buf, &seq.Database{Seqs: aln.Rows}, 70); err != nil {
			return nil, err
		}
		fasta = buf.b
	}
	dm := &KappaScanDM{
		tree:    tree.String(),
		grid:    append([]float64(nil), grid...),
		cost:    int64(aln.NTaxa()) * int64(aln.NSites()),
		pending: make(map[int64][]float64),
		bestLL:  math.Inf(-1),
	}
	return dist.NewTypedProblem[taskUnit, taskResult](id, dm, sharedData{AlignmentFasta: fasta, Options: opts})
}

// NextUnit implements dist.TypedDM: batch grid points up to the budget.
func (d *KappaScanDM) NextUnit(budget int64) (*dist.UnitOf[taskUnit], bool, error) {
	remaining := len(d.grid) - d.next
	if remaining <= 0 {
		return nil, false, nil
	}
	n := int(budget / d.cost)
	if n < 1 {
		n = 1
	}
	if n > remaining {
		n = remaining
	}
	batch := d.grid[d.next : d.next+n]
	d.next += n
	d.unitSeq++
	d.pending[d.unitSeq] = batch
	return &dist.UnitOf[taskUnit]{
		ID:        d.unitSeq,
		Algorithm: AlgorithmName,
		Payload:   taskUnit{Tree: d.tree, Kappas: batch},
		Cost:      int64(n) * d.cost,
	}, true, nil
}

// Consume implements dist.TypedDM.
func (d *KappaScanDM) Consume(unitID int64, res taskResult) error {
	batch, ok := d.pending[unitID]
	if !ok {
		return fmt.Errorf("dprml: kappa result for unknown unit %d", unitID)
	}
	delete(d.pending, unitID)
	d.consumed += len(batch)
	// Ties break to the smaller kappa so batching is irrelevant.
	if res.BestLogL > d.bestLL || (res.BestLogL == d.bestLL && res.BestKappa < d.bestK) {
		d.bestLL, d.bestK = res.BestLogL, res.BestKappa
	}
	return nil
}

// Done implements dist.TypedDM.
func (d *KappaScanDM) Done() bool { return d.consumed >= len(d.grid) }

// FinalResult implements dist.TypedDM; decode with DecodeKappaScan.
func (d *KappaScanDM) FinalResult() (any, error) {
	if !d.Done() {
		return nil, fmt.Errorf("dprml: kappa scan incomplete")
	}
	return KappaScanResult{Kappa: d.bestK, LogL: d.bestLL}, nil
}

// RemainingCost implements dist.CostReporter.
func (d *KappaScanDM) RemainingCost() int64 {
	return int64(len(d.grid)-d.consumed) * d.cost
}

// Progress implements dist.Progresser.
func (d *KappaScanDM) Progress() (done, total int) { return d.consumed, len(d.grid) }

// DecodeKappaScan unpacks a kappa scan's final payload.
func DecodeKappaScan(payload []byte) (*KappaScanResult, error) {
	r, err := dist.Decode[KappaScanResult](payload)
	if err != nil {
		return nil, err
	}
	return &r, nil
}

// scanKappas is the donor-side half: evaluate each kappa on the unit's
// fixed tree with empirical base frequencies. Cancellation is checked per
// grid point.
func (c *evalContext) scanKappas(ctx context.Context, tree *phylo.Tree, kappas []float64) (taskResult, error) {
	best := taskResult{BestEdge: -1, BestLogL: math.Inf(-1)}
	pi := likelihood.EmpiricalFrequencies(c.aln)
	rates := likelihood.UniformRates()
	if c.opts.GammaCategories > 1 {
		var err error
		rates, err = likelihood.DiscreteGamma(c.opts.GammaAlpha, c.opts.GammaCategories)
		if err != nil {
			return best, err
		}
	}
	for _, kappa := range kappas {
		if err := ctx.Err(); err != nil {
			return best, err
		}
		m, err := likelihood.NewHKY85(kappa, pi)
		if err != nil {
			return best, err
		}
		ev, err := likelihood.NewEvaluator(m, rates, c.data)
		if err != nil {
			return best, err
		}
		ll, err := ev.LogLikelihood(tree)
		if err != nil {
			return best, err
		}
		if ll > best.BestLogL || (ll == best.BestLogL && kappa < best.BestKappa) {
			best.BestLogL, best.BestKappa = ll, kappa
		}
	}
	return best, nil
}
