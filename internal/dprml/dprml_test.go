package dprml

import (
	"context"
	"math"
	"testing"

	"repro/internal/dist"
	"repro/internal/likelihood"
	"repro/internal/phylo"
	"repro/internal/sched"
	"repro/internal/seq"
)

// simAlignment generates a test alignment on a known random tree.
func simAlignment(t *testing.T, nTaxa, nSites int, seed int64) (*seq.Alignment, *phylo.Tree) {
	t.Helper()
	taxa := make([]string, nTaxa)
	for i := range taxa {
		taxa[i] = "t" + string(rune('A'+i%26)) + string(rune('0'+i/26))
	}
	tree, err := likelihood.RandomTree(taxa, 0.05, 0.35, seed)
	if err != nil {
		t.Fatal(err)
	}
	m, err := likelihood.NewHKY85(2, [4]float64{0.3, 0.2, 0.2, 0.3})
	if err != nil {
		t.Fatal(err)
	}
	aln, err := likelihood.Simulate(tree, m, likelihood.UniformRates(), nSites, seed+100)
	if err != nil {
		t.Fatal(err)
	}
	return aln, tree
}

func testOpts() Options {
	return Options{
		Model:           "HKY85:kappa=2",
		LocalRounds:     1,
		FinalRounds:     1,
		BranchTolerance: 1e-3,
	}
}

func TestAdditionOrderValidation(t *testing.T) {
	aln, _ := simAlignment(t, 4, 50, 1)
	if _, err := additionOrder(aln, Options{AdditionOrder: []string{"x", "y", "z", "w"}}); err == nil {
		t.Error("bogus taxa accepted")
	}
	if _, err := additionOrder(aln, Options{AdditionOrder: aln.Taxa()[:3]}); err == nil {
		t.Error("partial order accepted")
	}
	dup := []string{aln.Taxa()[0], aln.Taxa()[0], aln.Taxa()[1], aln.Taxa()[2]}
	if _, err := additionOrder(aln, Options{AdditionOrder: dup}); err == nil {
		t.Error("duplicate taxa accepted")
	}
	order, err := additionOrder(aln, Options{})
	if err != nil || len(order) != 4 {
		t.Errorf("default order failed: %v %v", order, err)
	}
}

func TestBuildTreeLocalSmall(t *testing.T) {
	aln, truth := simAlignment(t, 6, 800, 42)
	res, err := BuildTreeLocal(aln, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(res.LogL, 0) || res.LogL >= 0 {
		t.Fatalf("bad logL %g", res.LogL)
	}
	got, err := phylo.ParseNewick(res.Newick)
	if err != nil {
		t.Fatal(err)
	}
	if got.NLeaves() != 6 {
		t.Fatalf("%d leaves", got.NLeaves())
	}
	// With 800 sites on a 6-taxon tree, stepwise insertion should recover
	// the true topology (or at worst be very close).
	d, err := phylo.RobinsonFoulds(got, truth)
	if err != nil {
		t.Fatal(err)
	}
	if d > 2 {
		t.Errorf("RF distance to truth = %d (>2):\n got %s\ntrue %s", d, res.Newick, truth.String())
	}
}

func TestDistributedMatchesLocal(t *testing.T) {
	aln, _ := simAlignment(t, 7, 300, 7)
	opts := testOpts()
	ref, err := BuildTreeLocal(aln, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, policy := range []sched.Policy{
		sched.Fixed{Size: 1},       // one candidate per unit
		sched.Fixed{Size: 1 << 40}, // whole stage per unit
		sched.Adaptive{Target: 1, Bootstrap: 2000, Min: 1},
	} {
		p, err := NewProblem("dprml-"+policy.Name(), aln, opts)
		if err != nil {
			t.Fatal(err)
		}
		out, err := dist.RunLocal(context.Background(), p, 3, policy)
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecodeResult(out)
		if err != nil {
			t.Fatal(err)
		}
		gt, err := phylo.ParseNewick(got.Newick)
		if err != nil {
			t.Fatal(err)
		}
		rt, _ := phylo.ParseNewick(ref.Newick)
		if !phylo.SameTopology(gt, rt) {
			t.Errorf("policy %s: topology differs:\n dist  %s\n local %s", policy.Name(), got.Newick, ref.Newick)
		}
		if math.Abs(got.LogL-ref.LogL) > 1e-6 {
			t.Errorf("policy %s: logL %g vs local %g", policy.Name(), got.LogL, ref.LogL)
		}
	}
}

func TestDataManagerStageFlow(t *testing.T) {
	aln, _ := simAlignment(t, 5, 100, 3)
	dm, err := NewDataManager(aln, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	// Phase 1: exactly one triplet unit; no more until consumed.
	u1, ok, err := dm.NextUnit(1 << 40)
	if err != nil || !ok {
		t.Fatalf("no triplet unit: %v", err)
	}
	if _, ok, _ := dm.NextUnit(1 << 40); ok {
		t.Fatal("second unit issued during triplet phase")
	}
	// Feed a plausible triplet result.
	trip := phylo.Triplet(aln.Taxa()[0], aln.Taxa()[1], aln.Taxa()[2], 0.1)
	res := taskResult{BestEdge: -1, BestLogL: -100, BestTree: trip.String()}
	if err := dm.Consume(u1.ID, res); err != nil {
		t.Fatal(err)
	}
	// Phase 2: stage for taxon 4 has 3 edges; with budget for 1 task we
	// get three separate units then a barrier.
	placed, total := dm.Progress()
	if placed != 3 || total != 5 {
		t.Fatalf("progress %d/%d", placed, total)
	}
	var stageUnits []*dist.UnitOf[taskUnit]
	for {
		u, ok, err := dm.NextUnit(1)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		stageUnits = append(stageUnits, u)
	}
	if len(stageUnits) != 3 {
		t.Fatalf("stage issued %d units, want 3", len(stageUnits))
	}
	if dm.RemainingCost() <= 0 {
		t.Error("remaining cost should be positive mid-run")
	}
	if dm.Done() {
		t.Error("done mid-stage")
	}
}

func TestDataManagerRequeue(t *testing.T) {
	aln, _ := simAlignment(t, 5, 100, 3)
	dm, err := NewDataManager(aln, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	u1, _, _ := dm.NextUnit(1 << 40)
	trip := phylo.Triplet(aln.Taxa()[0], aln.Taxa()[1], aln.Taxa()[2], 0.1)
	_ = dm.Consume(u1.ID, taskResult{BestTree: trip.String(), BestLogL: -1})
	// Take the whole stage as one unit, then lose it.
	u2, ok, _ := dm.NextUnit(1 << 40)
	if !ok {
		t.Fatal("no stage unit")
	}
	if _, ok, _ := dm.NextUnit(1); ok {
		t.Fatal("stage not exhausted")
	}
	dm.Requeue(u2.ID)
	u3, ok, _ := dm.NextUnit(1 << 40)
	if !ok {
		t.Fatal("requeued work not re-issuable")
	}
	if u3.Cost != u2.Cost {
		t.Errorf("requeued unit cost %d != original %d", u3.Cost, u2.Cost)
	}
}

func TestGammaModelRuns(t *testing.T) {
	aln, _ := simAlignment(t, 5, 200, 11)
	opts := testOpts()
	opts.Model = "GTR:ag=3,ct=3"
	opts.GammaCategories = 4
	opts.GammaAlpha = 0.7
	res, err := BuildTreeLocal(aln, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.LogL >= 0 {
		t.Fatalf("logL %g", res.LogL)
	}
}

func TestCustomAdditionOrder(t *testing.T) {
	aln, _ := simAlignment(t, 6, 400, 19)
	opts := testOpts()
	taxa := aln.Taxa()
	// Reverse order.
	rev := make([]string, len(taxa))
	for i, x := range taxa {
		rev[len(taxa)-1-i] = x
	}
	opts.AdditionOrder = rev
	res, err := BuildTreeLocal(aln, opts)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := phylo.ParseNewick(res.Newick)
	if err != nil {
		t.Fatal(err)
	}
	if tr.NLeaves() != 6 {
		t.Fatalf("%d leaves", tr.NLeaves())
	}
}

func TestBadModelRejectedAtSubmit(t *testing.T) {
	aln, _ := simAlignment(t, 4, 50, 2)
	opts := testOpts()
	opts.Model = "WAG" // protein model we don't have
	if _, err := NewDataManager(aln, opts); err == nil {
		t.Error("bad model accepted at submission")
	}
	if _, err := NewProblem("x", aln, opts); err == nil {
		t.Error("bad model accepted by NewProblem")
	}
}

func TestResultString(t *testing.T) {
	r := &TreeResult{Newick: "(A:1,B:1,C:1);", LogL: -123.456}
	s := r.String()
	if len(s) == 0 || s[0] != 'l' {
		t.Errorf("String() = %q", s)
	}
}
