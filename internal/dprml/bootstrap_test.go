package dprml

import (
	"testing"

	"repro/internal/phylo"
	"repro/internal/sched"
	"repro/internal/seq"
)

func TestBootstrapAlignmentProperties(t *testing.T) {
	aln, _ := simAlignment(t, 5, 200, 23)
	rep, err := seq.BootstrapAlignment(aln, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.NTaxa() != aln.NTaxa() || rep.NSites() != aln.NSites() {
		t.Fatalf("replicate shape %dx%d, want %dx%d", rep.NTaxa(), rep.NSites(), aln.NTaxa(), aln.NSites())
	}
	// Same taxa, same order.
	for i := range aln.Rows {
		if rep.Rows[i].ID != aln.Rows[i].ID {
			t.Errorf("row %d: %s vs %s", i, rep.Rows[i].ID, aln.Rows[i].ID)
		}
	}
	// Column j of the replicate is column c of the original for all rows
	// simultaneously (columns resampled, not cells).
	orig := make(map[string]bool)
	for s := 0; s < aln.NSites(); s++ {
		col := make([]byte, aln.NTaxa())
		for r := range aln.Rows {
			col[r] = aln.Rows[r].Residues[s]
		}
		orig[string(col)] = true
	}
	for s := 0; s < rep.NSites(); s++ {
		col := make([]byte, rep.NTaxa())
		for r := range rep.Rows {
			col[r] = rep.Rows[r].Residues[s]
		}
		if !orig[string(col)] {
			t.Fatalf("replicate column %d is not an original column", s)
		}
	}
	// Deterministic and seed-sensitive.
	rep2, _ := seq.BootstrapAlignment(aln, 1)
	if rep.Rows[0].String() != rep2.Rows[0].String() {
		t.Error("bootstrap not deterministic for equal seeds")
	}
	rep3, _ := seq.BootstrapAlignment(aln, 2)
	same := true
	for i := range rep.Rows {
		if string(rep.Rows[i].Residues) != string(rep3.Rows[i].Residues) {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical replicates")
	}
	if _, err := seq.BootstrapAlignment(nil, 1); err == nil {
		t.Error("nil alignment accepted")
	}
}

func TestBootstrapAnalysis(t *testing.T) {
	// Strong signal (long alignment, clean tree): every true split should
	// receive high bootstrap support.
	aln, truth := simAlignment(t, 6, 900, 42)
	opts := testOpts()
	res, err := Bootstrap(t.Context(), aln, opts, 6, 3, sched.Adaptive{Target: 1, Bootstrap: 2000, Min: 1}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Replicates) != 6 {
		t.Fatalf("%d replicates", len(res.Replicates))
	}
	if res.Consensus == nil || res.Consensus.NLeaves() != 6 {
		t.Fatalf("bad consensus: %v", res.Consensus)
	}
	// Consensus should recover the generating topology (or very nearly).
	d, err := phylo.RobinsonFoulds(res.Consensus, truth)
	if err != nil {
		t.Fatal(err)
	}
	if d > 2 {
		t.Errorf("bootstrap consensus RF %d from truth:\n cons %s\n true %s", d, res.Consensus, truth)
	}
	for s, frac := range res.Support {
		if frac <= 0.5 || frac > 1 {
			t.Errorf("consensus split %s has support %g outside (0.5, 1]", s, frac)
		}
	}
	if _, err := Bootstrap(t.Context(), aln, opts, 1, 1, sched.Fixed{Size: 1}, 1); err == nil {
		t.Error("1-replicate bootstrap accepted")
	}
}
