package dprml

import (
	"context"
	"math"
	"testing"

	"repro/internal/dist"
	"repro/internal/likelihood"
	"repro/internal/phylo"
	"repro/internal/sched"
)

func TestKappaGrid(t *testing.T) {
	g, err := KappaGrid(0.5, 8, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(g) != 9 || math.Abs(g[0]-0.5) > 1e-12 || math.Abs(g[8]-8) > 1e-9 {
		t.Errorf("grid = %v", g)
	}
	for i := 1; i < len(g); i++ {
		if g[i] <= g[i-1] {
			t.Errorf("grid not increasing at %d", i)
		}
	}
	// Log spacing: constant ratio.
	r := g[1] / g[0]
	for i := 2; i < len(g); i++ {
		if math.Abs(g[i]/g[i-1]-r) > 1e-9 {
			t.Errorf("grid not log-spaced at %d", i)
		}
	}
	for _, bad := range [][3]float64{{0, 5, 5}, {1, 1, 5}, {2, 1, 5}, {1, 5, 1}} {
		if _, err := KappaGrid(bad[0], bad[1], int(bad[2])); err == nil {
			t.Errorf("KappaGrid(%v) accepted", bad)
		}
	}
}

func TestDistributedKappaScanMatchesSerialEstimate(t *testing.T) {
	const trueKappa = 4.0
	taxa := make([]string, 8)
	for i := range taxa {
		taxa[i] = "t" + string(rune('A'+i))
	}
	tree, err := likelihood.RandomTree(taxa, 0.05, 0.3, 8)
	if err != nil {
		t.Fatal(err)
	}
	m, err := likelihood.NewHKY85(trueKappa, [4]float64{0.3, 0.2, 0.2, 0.3})
	if err != nil {
		t.Fatal(err)
	}
	aln, err := likelihood.Simulate(tree, m, likelihood.UniformRates(), 2000, 9)
	if err != nil {
		t.Fatal(err)
	}
	nj, err := phylo.NeighborJoining(phylo.AlignmentDistances(aln))
	if err != nil {
		t.Fatal(err)
	}
	grid, err := KappaGrid(0.5, 20, 33)
	if err != nil {
		t.Fatal(err)
	}

	// Distributed scan under two batching policies must agree exactly.
	var results []*KappaScanResult
	for _, pol := range []sched.Policy{
		sched.Fixed{Size: 1},       // one kappa per unit
		sched.Fixed{Size: 1 << 40}, // the whole grid in one unit
	} {
		p, err := NewKappaScanProblem("kscan-"+pol.Name(), aln, nj, grid, Options{})
		if err != nil {
			t.Fatal(err)
		}
		out, err := dist.RunLocal(context.Background(), p, 3, pol)
		if err != nil {
			t.Fatal(err)
		}
		res, err := DecodeKappaScan(out)
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, res)
	}
	if results[0].Kappa != results[1].Kappa || results[0].LogL != results[1].LogL {
		t.Errorf("batching changed the scan result: %+v vs %+v", results[0], results[1])
	}

	// The grid winner must bracket the Brent estimate on the same tree.
	kappaHat, _, err := likelihood.EstimateKappa(nj, aln, likelihood.EstimateKappaOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got := results[0].Kappa
	if got < kappaHat/1.3 || got > kappaHat*1.3 {
		t.Errorf("grid winner %.3f far from Brent estimate %.3f", got, kappaHat)
	}
	if got < trueKappa*0.6 || got > trueKappa*1.6 {
		t.Errorf("grid winner %.3f far from truth %.1f", got, trueKappa)
	}
}

func TestKappaScanValidation(t *testing.T) {
	taxa := []string{"a", "b", "c", "d"}
	tree, _ := likelihood.RandomTree(taxa, 0.1, 0.2, 1)
	aln, err := likelihood.Simulate(tree, likelihood.NewJC69(), likelihood.UniformRates(), 100, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewKappaScanProblem("x", aln, tree, []float64{2}, Options{}); err == nil {
		t.Error("1-point grid accepted")
	}
	if _, err := NewKappaScanProblem("x", aln, tree, []float64{2, -1}, Options{}); err == nil {
		t.Error("negative kappa accepted")
	}
	wrong := phylo.Triplet("a", "b", "c", 0.1)
	if _, err := NewKappaScanProblem("x", aln, wrong, []float64{1, 2}, Options{}); err == nil {
		t.Error("tree/alignment mismatch accepted")
	}
}

func TestKappaScanProgress(t *testing.T) {
	taxa := []string{"a", "b", "c", "d", "e"}
	tree, _ := likelihood.RandomTree(taxa, 0.1, 0.2, 3)
	aln, err := likelihood.Simulate(tree, likelihood.NewJC69(), likelihood.UniformRates(), 100, 4)
	if err != nil {
		t.Fatal(err)
	}
	grid, _ := KappaGrid(1, 4, 8)
	p, err := NewKappaScanProblem("prog", aln, tree, grid, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// p.DM is the typed adapter; the optional extensions must be forwarded
	// through it to the underlying KappaScanDM.
	if done, total := p.DM.(dist.Progresser).Progress(); done != 0 || total != 8 {
		t.Errorf("fresh progress %d/%d", done, total)
	}
	if p.DM.(dist.CostReporter).RemainingCost() <= 0 {
		t.Error("no remaining cost on a fresh scan")
	}
	if _, err := p.DM.FinalResult(); err == nil {
		t.Error("FinalResult before completion succeeded")
	}
}
