package dprml

import (
	"fmt"
	"math"

	"repro/internal/dist"
	"repro/internal/phylo"
	"repro/internal/seq"
)

// phases of the staged computation
const (
	phaseTriplet = iota // optimise the 3-taxon starting tree
	phaseInsert         // insertion stages, one per remaining taxon
	phaseFinal          // full branch-length smoothing of the finished tree
	phaseDone
)

// DataManager drives distributed stepwise insertion. All ML computation
// happens on donors; the server only does tree bookkeeping, which is how
// the paper's modest Pentium III server coordinates 200 machines. It
// implements the typed dist.TypedDM[taskUnit, taskResult] plus the
// CostReporter, Progresser and Requeuer extensions.
type DataManager struct {
	opts  Options
	order []string

	phase     int
	taxonIdx  int // index into order of the taxon being inserted
	tree      *phylo.Tree
	unitSeq   int64
	costScale int64 // cost of one candidate evaluation ~ tree size

	// current stage bookkeeping
	stageEdges    int
	nextEdge      int
	edgesConsumed int
	pending       map[int64]*taskUnit
	bestEdge      int
	bestLL        float64
	bestTree      string

	final TreeResult
}

var (
	_ dist.TypedDM[taskUnit, taskResult] = (*DataManager)(nil)
	_ dist.CostReporter                  = (*DataManager)(nil)
	_ dist.Requeuer                      = (*DataManager)(nil)
	_ dist.Progresser                    = (*DataManager)(nil)
)

// NewDataManager builds the server-side half of a DPRml problem.
func NewDataManager(aln *seq.Alignment, opts Options) (*DataManager, error) {
	opts.applyDefaults()
	order, err := additionOrder(aln, opts)
	if err != nil {
		return nil, err
	}
	// Validate the model spec early (server side) so a typo fails at
	// submission, not on the first donor.
	if _, err := newEvalContext(aln, opts); err != nil {
		return nil, err
	}
	d := &DataManager{
		opts:    opts,
		order:   order,
		phase:   phaseTriplet,
		tree:    phylo.Triplet(order[0], order[1], order[2], opts.InitialBranchLength),
		pending: make(map[int64]*taskUnit),
		// One candidate evaluation costs roughly tree-size likelihood
		// work; sites scale it so throughput is comparable across
		// problems.
		costScale: int64(aln.NSites()),
	}
	return d, nil
}

// NewProblem assembles a complete dist.Problem for a DPRml run; the typed
// adapter owns all payload marshalling.
func NewProblem(id string, aln *seq.Alignment, opts Options) (*dist.Problem, error) {
	dm, err := NewDataManager(aln, opts)
	if err != nil {
		return nil, err
	}
	var fasta []byte
	{
		var buf writerBuf
		if err := seq.WriteFASTA(&buf, &seq.Database{Seqs: aln.Rows}, 70); err != nil {
			return nil, err
		}
		fasta = buf.b
	}
	opts.applyDefaults()
	return dist.NewTypedProblem[taskUnit, taskResult](id, dm, sharedData{AlignmentFasta: fasta, Options: opts})
}

type writerBuf struct{ b []byte }

func (w *writerBuf) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}

// taskCost estimates one candidate evaluation's cost at the current stage.
func (d *DataManager) taskCost() int64 {
	leaves := int64(d.tree.NLeaves() + 1)
	c := leaves * d.costScale
	if c < 1 {
		c = 1
	}
	return c
}

// NextUnit implements dist.TypedDM.
func (d *DataManager) NextUnit(budget int64) (*dist.UnitOf[taskUnit], bool, error) {
	switch d.phase {
	case phaseTriplet:
		if len(d.pending) > 0 {
			return nil, false, nil // triplet unit already out
		}
		u := &taskUnit{Tree: d.tree.String(), FullOptimize: true, Rounds: 1}
		return d.issue(u, 3*d.costScale)

	case phaseInsert:
		remaining := d.stageEdges - d.nextEdge
		if remaining <= 0 {
			return nil, false, nil // stage barrier: waiting on results
		}
		tc := d.taskCost()
		n := int(budget / tc)
		if n < 1 {
			n = 1
		}
		if n > remaining {
			n = remaining
		}
		edges := make([]int, n)
		for i := range edges {
			edges[i] = d.nextEdge + i
		}
		d.nextEdge += n
		u := &taskUnit{
			Tree:  d.tree.String(),
			Taxon: d.order[d.taxonIdx],
			Edges: edges,
		}
		return d.issue(u, int64(n)*tc)

	case phaseFinal:
		if len(d.pending) > 0 {
			return nil, false, nil
		}
		u := &taskUnit{Tree: d.tree.String(), FullOptimize: true, Rounds: d.opts.FinalRounds}
		return d.issue(u, int64(d.tree.NLeaves())*d.costScale)

	default:
		return nil, false, nil
	}
}

func (d *DataManager) issue(u *taskUnit, cost int64) (*dist.UnitOf[taskUnit], bool, error) {
	d.unitSeq++
	d.pending[d.unitSeq] = u
	return &dist.UnitOf[taskUnit]{
		ID:        d.unitSeq,
		Algorithm: AlgorithmName,
		Payload:   *u,
		Cost:      cost,
	}, true, nil
}

// Requeue implements dist.Requeuer: a lost unit's edges return to the
// dispatch pool. The server calls this through its reissue path; because
// the DataManager already caches the unit in pending, reissue via the
// server's payload cache also works — this hook just keeps the stage
// accounting exact if the server prefers regeneration.
func (d *DataManager) Requeue(unitID int64) {
	u, ok := d.pending[unitID]
	if !ok {
		return
	}
	delete(d.pending, unitID)
	if d.phase == phaseInsert && u.Taxon == d.order[d.taxonIdx] {
		// Return the lowest edge index so re-dispatch is contiguous.
		lo := u.Edges[0]
		if lo < d.nextEdge {
			d.nextEdge = lo
		}
	}
}

// Consume implements dist.TypedDM.
func (d *DataManager) Consume(unitID int64, res taskResult) error {
	u, ok := d.pending[unitID]
	if !ok {
		return fmt.Errorf("dprml: result for unknown unit %d", unitID)
	}
	delete(d.pending, unitID)
	switch d.phase {
	case phaseTriplet:
		t, err := phylo.ParseNewick(res.BestTree)
		if err != nil {
			return fmt.Errorf("dprml: triplet result: %w", err)
		}
		d.tree = t
		d.taxonIdx = 3
		d.phase = phaseInsert
		d.startStage()

	case phaseInsert:
		if d.bestEdge < 0 || better(res.BestLogL, res.BestEdge, d.bestLL, d.bestEdge) {
			d.bestEdge, d.bestLL, d.bestTree = res.BestEdge, res.BestLogL, res.BestTree
		}
		d.edgesConsumed += len(u.Edges)
		if d.edgesConsumed >= d.stageEdges {
			t, err := phylo.ParseNewick(d.bestTree)
			if err != nil {
				return fmt.Errorf("dprml: stage winner: %w", err)
			}
			d.tree = t
			d.taxonIdx++
			if d.taxonIdx < len(d.order) {
				d.startStage()
			} else {
				d.phase = phaseFinal
			}
		}

	case phaseFinal:
		t, err := phylo.ParseNewick(res.BestTree)
		if err != nil {
			return fmt.Errorf("dprml: final result: %w", err)
		}
		d.tree = t
		d.final = TreeResult{Newick: res.BestTree, LogL: res.BestLogL}
		d.phase = phaseDone
	}
	return nil
}

func (d *DataManager) startStage() {
	d.stageEdges = len(d.tree.Edges())
	d.nextEdge = 0
	d.edgesConsumed = 0
	d.bestEdge = -1
	d.bestLL = math.Inf(-1)
	d.bestTree = ""
}

// Done implements dist.TypedDM.
func (d *DataManager) Done() bool { return d.phase == phaseDone }

// FinalResult implements dist.TypedDM; decode with DecodeResult.
func (d *DataManager) FinalResult() (any, error) {
	if d.phase != phaseDone {
		return nil, fmt.Errorf("dprml: FinalResult before completion")
	}
	return d.final, nil
}

// RemainingCost implements dist.CostReporter: a rough estimate of the
// outstanding candidate evaluations across all future stages.
func (d *DataManager) RemainingCost() int64 {
	if d.phase == phaseDone {
		return 0
	}
	var sum int64
	k := d.tree.NLeaves() + 1
	// Current stage's undispatched tasks plus all future stages.
	if d.phase == phaseInsert {
		sum += int64(d.stageEdges-d.edgesConsumed) * d.taskCost()
		k = d.tree.NLeaves() + 2
	}
	for ; k <= len(d.order); k++ {
		sum += int64(2*k-5) * int64(k) * d.costScale
	}
	return sum
}

// Progress reports (taxa placed, total taxa) for status displays.
func (d *DataManager) Progress() (placed, total int) {
	switch d.phase {
	case phaseTriplet:
		return 3, len(d.order)
	case phaseDone, phaseFinal:
		return len(d.order), len(d.order)
	default:
		return d.taxonIdx, len(d.order)
	}
}
