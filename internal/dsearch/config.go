// Package dsearch implements DSEARCH (Keane & Naughton 2004): sensitive
// sequence database searching on the distributed system. The FASTA database
// is split into dynamically sized chunks by the server-side DataManager;
// donors align the query set against their chunk with one of the rigorous
// built-in algorithms (Needleman–Wunsch, Smith–Waterman, banded,
// Hirschberg); the server merges per-chunk top-hit lists into the final
// report.
package dsearch

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"repro/internal/align"
	"repro/internal/seq"
)

// Config is DSEARCH's straightforward configuration file, mirroring the
// paper's description: the user picks an algorithm, a scoring scheme and
// output size; everything else is scheduling policy handled by the system.
type Config struct {
	// Algorithm is one of the built-in search algorithms
	// ("smith-waterman", "needleman-wunsch", "banded", "hirschberg").
	Algorithm string
	// Matrix names the scoring matrix ("BLOSUM62", "PAM250", "DNA", "UNIT").
	Matrix string
	// GapOpen and GapExtend are the affine gap penalties.
	GapOpen, GapExtend int
	// Band is the banded algorithm's bandwidth (0 = auto).
	Band int
	// TopK is the number of hits reported per query.
	TopK int
	// MinScore discards hits scoring below this threshold.
	MinScore int
	// ReportAlignments makes donors run the traceback on each kept hit and
	// ship the gapped alignment strings with it (costlier units, richer
	// report).
	ReportAlignments bool
	// MaskLowComplexity applies a SEG/DUST-style windowed-entropy filter
	// to database and queries before the search, suppressing spurious
	// hits between compositionally biased regions. MaskWindow and
	// MaskThreshold tune it (defaults 12 and 2.2 bits, protein-oriented;
	// DNA searches want a threshold near 1.5).
	MaskLowComplexity bool
	MaskWindow        int
	MaskThreshold     float64
}

// DefaultConfig is a sensible protein search setup.
func DefaultConfig() Config {
	return Config{
		Algorithm: align.AlgSmithWaterman,
		Matrix:    "BLOSUM62",
		GapOpen:   10,
		GapExtend: 1,
		TopK:      25,
		MinScore:  1,
	}
}

// Validate resolves and checks the configuration.
func (c *Config) Validate() error {
	if c.TopK <= 0 {
		return fmt.Errorf("dsearch: topk must be positive, got %d", c.TopK)
	}
	if c.MaskWindow == 0 {
		c.MaskWindow = 12
	}
	if c.MaskThreshold == 0 {
		c.MaskThreshold = 2.2
	}
	if c.MaskLowComplexity {
		if c.MaskWindow < 2 {
			return fmt.Errorf("dsearch: mask window must be >= 2, got %d", c.MaskWindow)
		}
		if c.MaskThreshold <= 0 {
			return fmt.Errorf("dsearch: mask threshold must be positive, got %g", c.MaskThreshold)
		}
	}
	if _, err := c.aligner(); err != nil {
		return err
	}
	return nil
}

// applyMask runs the low-complexity filter over both inputs when enabled,
// returning (possibly new) databases.
func (c *Config) applyMask(db, queries *seq.Database) (*seq.Database, *seq.Database, error) {
	if !c.MaskLowComplexity {
		return db, queries, nil
	}
	mdb, _, err := seq.MaskDatabase(db, c.MaskWindow, c.MaskThreshold)
	if err != nil {
		return nil, nil, err
	}
	mq, _, err := seq.MaskDatabase(queries, c.MaskWindow, c.MaskThreshold)
	if err != nil {
		return nil, nil, err
	}
	return mdb, mq, nil
}

// aligner builds the configured alignment algorithm.
func (c *Config) aligner() (align.Aligner, error) {
	m, err := seq.MatrixByName(c.Matrix)
	if err != nil {
		return nil, err
	}
	return align.New(c.Algorithm, align.Params{
		Matrix: m,
		Gap:    align.Gap{Open: c.GapOpen, Extend: c.GapExtend},
	}, c.Band)
}

// parseBool accepts the config file's boolean spellings.
func parseBool(val string) (bool, error) {
	switch strings.ToLower(val) {
	case "true", "yes", "1":
		return true, nil
	case "false", "no", "0":
		return false, nil
	default:
		return false, fmt.Errorf("bad boolean %q", val)
	}
}

// ParseConfig reads the key=value configuration file format:
//
//	# comment
//	algorithm = smith-waterman
//	matrix    = BLOSUM62
//	gap_open  = 10
//	gap_extend = 1
//	topk      = 25
func ParseConfig(r io.Reader) (Config, error) {
	c := DefaultConfig()
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		key, val, ok := strings.Cut(text, "=")
		if !ok {
			return c, fmt.Errorf("dsearch: config line %d: expected key=value, got %q", line, text)
		}
		key = strings.ToLower(strings.TrimSpace(key))
		val = strings.TrimSpace(val)
		var err error
		switch key {
		case "algorithm":
			c.Algorithm = val
		case "matrix":
			c.Matrix = val
		case "gap_open":
			_, err = fmt.Sscanf(val, "%d", &c.GapOpen)
		case "gap_extend":
			_, err = fmt.Sscanf(val, "%d", &c.GapExtend)
		case "band":
			_, err = fmt.Sscanf(val, "%d", &c.Band)
		case "topk":
			_, err = fmt.Sscanf(val, "%d", &c.TopK)
		case "min_score":
			_, err = fmt.Sscanf(val, "%d", &c.MinScore)
		case "report_alignments":
			c.ReportAlignments, err = parseBool(val)
		case "mask_low_complexity":
			c.MaskLowComplexity, err = parseBool(val)
		case "mask_window":
			_, err = fmt.Sscanf(val, "%d", &c.MaskWindow)
		case "mask_threshold":
			_, err = fmt.Sscanf(val, "%g", &c.MaskThreshold)
		default:
			return c, fmt.Errorf("dsearch: config line %d: unknown key %q", line, key)
		}
		if err != nil {
			return c, fmt.Errorf("dsearch: config line %d: bad value %q for %s: %w", line, val, key, err)
		}
	}
	if err := sc.Err(); err != nil {
		return c, err
	}
	return c, c.Validate()
}
