package dsearch

import (
	"fmt"
	"sort"
	"strings"
)

// Hit is one query-subject alignment above threshold.
type Hit struct {
	Query   string
	Subject string
	Score   int
	// SubjectLen helps the report reader judge coverage.
	SubjectLen int
	// AlignedQuery/AlignedSubject are the gapped aligned strings, present
	// only when Config.ReportAlignments is set (computed on the donor for
	// the hits it keeps).
	AlignedQuery   string
	AlignedSubject string
	// Identity is the exact-match fraction of the alignment columns (0
	// when alignments were not requested).
	Identity float64
	// EValue is the expected number of random database sequences scoring
	// at least this well (0 until AnnotateEValues runs).
	EValue float64
}

// HitList keeps the best K hits per query, lowest score evictable first.
// It is the server-side accumulation structure DSEARCH's DataManager folds
// chunk results into.
type HitList struct {
	K    int
	hits map[string][]Hit // query -> sorted descending by score
}

// NewHitList creates a top-K accumulator.
func NewHitList(k int) *HitList {
	return &HitList{K: k, hits: make(map[string][]Hit)}
}

// Add inserts a hit, keeping only the top K for its query. Ties are broken
// by subject ID for determinism.
func (h *HitList) Add(hit Hit) {
	hs := h.hits[hit.Query]
	hs = append(hs, hit)
	sort.Slice(hs, func(i, j int) bool {
		if hs[i].Score != hs[j].Score {
			return hs[i].Score > hs[j].Score
		}
		return hs[i].Subject < hs[j].Subject
	})
	if len(hs) > h.K {
		hs = hs[:h.K]
	}
	h.hits[hit.Query] = hs
}

// Merge folds another batch of hits in.
func (h *HitList) Merge(hits []Hit) {
	for _, hit := range hits {
		h.Add(hit)
	}
}

// Query returns the accumulated hits for one query (descending score).
func (h *HitList) Query(q string) []Hit {
	return append([]Hit(nil), h.hits[q]...)
}

// All returns every hit, grouped by query in sorted query order.
func (h *HitList) All() []Hit {
	queries := make([]string, 0, len(h.hits))
	for q := range h.hits {
		queries = append(queries, q)
	}
	sort.Strings(queries)
	var out []Hit
	for _, q := range queries {
		out = append(out, h.hits[q]...)
	}
	return out
}

// Report renders the classic search-report table; IDENT and EVALUE columns
// appear when alignments / E-values were computed.
func (h *HitList) Report() string {
	all := h.All()
	withAln, withE := false, false
	for _, hit := range all {
		if hit.AlignedQuery != "" {
			withAln = true
		}
		if hit.EValue != 0 {
			withE = true
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-20s %-20s %8s %8s", "QUERY", "SUBJECT", "SCORE", "SUBJLEN")
	if withAln {
		fmt.Fprintf(&b, " %7s", "IDENT")
	}
	if withE {
		fmt.Fprintf(&b, " %10s", "EVALUE")
	}
	b.WriteByte('\n')
	for _, hit := range all {
		fmt.Fprintf(&b, "%-20s %-20s %8d %8d", hit.Query, hit.Subject, hit.Score, hit.SubjectLen)
		if withAln {
			fmt.Fprintf(&b, " %6.1f%%", 100*hit.Identity)
		}
		if withE {
			fmt.Fprintf(&b, " %10.2g", hit.EValue)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// FormatAlignment renders one hit's gapped alignment in 60-column blocks
// with a midline marking exact matches, the classic pairwise report form.
// It returns "" for hits without alignments.
func FormatAlignment(h Hit) string {
	if h.AlignedQuery == "" || len(h.AlignedQuery) != len(h.AlignedSubject) {
		return ""
	}
	const width = 60
	var b strings.Builder
	fmt.Fprintf(&b, "%s vs %s  score=%d identity=%.1f%%\n", h.Query, h.Subject, h.Score, 100*h.Identity)
	for at := 0; at < len(h.AlignedQuery); at += width {
		end := at + width
		if end > len(h.AlignedQuery) {
			end = len(h.AlignedQuery)
		}
		qs, ss := h.AlignedQuery[at:end], h.AlignedSubject[at:end]
		mid := make([]byte, end-at)
		for i := range mid {
			if qs[i] == ss[i] && qs[i] != '-' {
				mid[i] = '|'
			} else {
				mid[i] = ' '
			}
		}
		fmt.Fprintf(&b, "  %s\n  %s\n  %s\n", qs, mid, ss)
	}
	return b.String()
}
