package dsearch

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/dist"
	"repro/internal/sched"
	"repro/internal/seq"
)

// maskingWorkload plants a shared homopolymer into otherwise unrelated
// query/database pairs, plus one genuine homolog.
func maskingWorkload(t *testing.T) (db, queries *seq.Database) {
	t.Helper()
	g := seq.NewGenerator(seq.Protein, 91)
	run := bytes.Repeat([]byte("P"), 60)

	query := g.Random("query", 120)
	query.Residues = append(query.Residues, run...)

	homolog := g.Mutate(query, "homolog", 0.1, 0.01)
	decoy := g.Random("decoy", 120)
	decoy.Residues = append(decoy.Residues, run...) // shares only the run
	clean := g.Random("clean", 150)

	return seq.NewDatabase(homolog, decoy, clean), seq.NewDatabase(query)
}

func TestMaskingSuppressesLowComplexityHits(t *testing.T) {
	db, queries := maskingWorkload(t)
	cfg := DefaultConfig()
	cfg.TopK = 3

	plain, err := SearchLocal(db, queries, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.MaskLowComplexity = true
	masked, err := SearchLocal(db, queries, cfg)
	if err != nil {
		t.Fatal(err)
	}

	score := func(h *HitList, subject string) int {
		for _, hit := range h.Query("query") {
			if hit.Subject == subject {
				return hit.Score
			}
		}
		return 0
	}
	// Unmasked: the decoy scores highly off the shared poly-P alone.
	if score(plain, "decoy") < 100 {
		t.Fatalf("test premise broken: decoy scores %d unmasked", score(plain, "decoy"))
	}
	// Masked: the decoy's spurious score collapses; the homolog survives.
	if got := score(masked, "decoy"); got > score(plain, "decoy")/3 {
		t.Errorf("masking left decoy at %d (unmasked %d)", got, score(plain, "decoy"))
	}
	if got := score(masked, "homolog"); got < 200 {
		t.Errorf("masking destroyed the real homolog: %d", got)
	}
	if score(masked, "homolog") <= score(masked, "decoy") {
		t.Error("masked search does not rank the homolog above the decoy")
	}
}

func TestMaskingDistributedMatchesLocal(t *testing.T) {
	db, queries := maskingWorkload(t)
	cfg := DefaultConfig()
	cfg.TopK = 3
	cfg.MaskLowComplexity = true

	ref, err := SearchLocal(db, queries, cfg)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewProblem("mask", db, queries, cfg)
	if err != nil {
		t.Fatal(err)
	}
	out, err := dist.RunLocal(context.Background(), p, 2, sched.Adaptive{Target: 50 * time.Millisecond, Bootstrap: 1000, Min: 100})
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeResult(out, cfg.TopK)
	if err != nil {
		t.Fatal(err)
	}
	g, r := got.Query("query"), ref.Query("query")
	if len(g) != len(r) {
		t.Fatalf("%d hits distributed vs %d local", len(g), len(r))
	}
	for i := range g {
		if g[i] != r[i] {
			t.Errorf("hit %d differs: %+v vs %+v", i, g[i], r[i])
		}
	}
}

func TestMaskConfigKeys(t *testing.T) {
	c, err := ParseConfig(strings.NewReader("mask_low_complexity = yes\nmask_window = 16\nmask_threshold = 1.5\n"))
	if err != nil {
		t.Fatal(err)
	}
	if !c.MaskLowComplexity || c.MaskWindow != 16 || c.MaskThreshold != 1.5 {
		t.Errorf("config not applied: %+v", c)
	}
	if _, err := ParseConfig(strings.NewReader("mask_low_complexity = maybe\n")); err == nil {
		t.Error("bad boolean accepted")
	}
	bad := DefaultConfig()
	bad.MaskLowComplexity = true
	bad.MaskWindow = 1
	if err := bad.Validate(); err == nil {
		t.Error("window 1 accepted")
	}
	bad2 := DefaultConfig()
	bad2.MaskLowComplexity = true
	bad2.MaskThreshold = -1
	if err := bad2.Validate(); err == nil {
		t.Error("negative threshold accepted")
	}
}
