package dsearch

import (
	"context"
	"strings"
	"testing"

	"repro/internal/dist"
	"repro/internal/sched"
	"repro/internal/seq"
)

func TestParseConfig(t *testing.T) {
	text := `
# DSEARCH configuration
algorithm = smith-waterman
matrix    = BLOSUM62
gap_open  = 11
gap_extend = 1
topk = 10
min_score = 30
`
	cfg, err := ParseConfig(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Algorithm != "smith-waterman" || cfg.GapOpen != 11 || cfg.TopK != 10 || cfg.MinScore != 30 {
		t.Errorf("parsed config %+v", cfg)
	}
}

func TestParseConfigErrors(t *testing.T) {
	bad := []string{
		"algorithm smith-waterman\n",   // missing '='
		"unknown_key = 1\n",            // unknown key
		"gap_open = abc\n",             // bad int
		"topk = 0\n",                   // invalid after validation
		"algorithm = quantum-search\n", // unknown algorithm
		"matrix = NOPE\n",              // unknown matrix
	}
	for _, text := range bad {
		if _, err := ParseConfig(strings.NewReader(text)); err == nil {
			t.Errorf("config %q accepted", text)
		}
	}
}

func TestHitListTopK(t *testing.T) {
	h := NewHitList(3)
	for i, s := range []int{10, 50, 30, 20, 40} {
		h.Add(Hit{Query: "q", Subject: string(rune('a' + i)), Score: s})
	}
	hits := h.Query("q")
	if len(hits) != 3 {
		t.Fatalf("%d hits, want 3", len(hits))
	}
	if hits[0].Score != 50 || hits[1].Score != 40 || hits[2].Score != 30 {
		t.Errorf("top-3 = %v", hits)
	}
}

func TestHitListDeterministicTies(t *testing.T) {
	h1 := NewHitList(2)
	h2 := NewHitList(2)
	hits := []Hit{
		{Query: "q", Subject: "b", Score: 10},
		{Query: "q", Subject: "a", Score: 10},
		{Query: "q", Subject: "c", Score: 10},
	}
	h1.Merge(hits)
	h2.Merge([]Hit{hits[2], hits[0], hits[1]})
	a, b := h1.Query("q"), h2.Query("q")
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("tie-breaking not order-independent: %v vs %v", a, b)
		}
	}
	if a[0].Subject != "a" {
		t.Errorf("ties should prefer lexicographically smaller subject, got %v", a)
	}
}

func TestHitListReport(t *testing.T) {
	h := NewHitList(5)
	h.Add(Hit{Query: "q1", Subject: "s1", Score: 42, SubjectLen: 100})
	rep := h.Report()
	if !strings.Contains(rep, "q1") || !strings.Contains(rep, "42") {
		t.Errorf("report missing fields:\n%s", rep)
	}
}

func makeWorkload(t *testing.T) *seq.SearchWorkload {
	t.Helper()
	g := seq.NewGenerator(seq.Protein, 1234)
	return g.NewSearchWorkload(40, 3, 4, seq.LengthModel{Mean: 90, StdDev: 25, Min: 50, Max: 200})
}

func fastConfig() Config {
	cfg := DefaultConfig()
	cfg.TopK = 10
	return cfg
}

func TestSearchLocalFindsPlantedHomologs(t *testing.T) {
	w := makeWorkload(t)
	hits, err := SearchLocal(w.DB, w.Queries, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	for q, members := range w.Planted {
		got := hits.Query(q)
		if len(got) == 0 {
			t.Fatalf("query %s found nothing", q)
		}
		found := map[string]bool{}
		// The planted family members must dominate the top hits.
		for _, h := range got[:min(len(got), len(members)+1)] {
			found[h.Subject] = true
		}
		hitCount := 0
		for _, m := range members {
			if found[m] {
				hitCount++
			}
		}
		if hitCount < len(members)-1 {
			t.Errorf("query %s recovered only %d/%d planted homologs: %v", q, hitCount, len(members), got[:min(5, len(got))])
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestDistributedMatchesLocal(t *testing.T) {
	// The distributed search must produce exactly the same hit list as the
	// single-machine reference, regardless of chunking.
	w := makeWorkload(t)
	cfg := fastConfig()
	ref, err := SearchLocal(w.DB, w.Queries, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, policy := range []sched.Policy{
		sched.Fixed{Size: 500},
		sched.Fixed{Size: 50000},
		sched.GSS{K: 1, Min: 100},
	} {
		p, err := NewProblem("ds-"+policy.Name(), w.DB, w.Queries, cfg)
		if err != nil {
			t.Fatal(err)
		}
		out, err := dist.RunLocal(context.Background(), p, 4, policy)
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecodeResult(out, cfg.TopK)
		if err != nil {
			t.Fatal(err)
		}
		refAll, gotAll := ref.All(), got.All()
		if len(refAll) != len(gotAll) {
			t.Fatalf("policy %s: %d hits vs reference %d", policy.Name(), len(gotAll), len(refAll))
		}
		for i := range refAll {
			if refAll[i] != gotAll[i] {
				t.Fatalf("policy %s: hit %d differs: %+v vs %+v", policy.Name(), i, gotAll[i], refAll[i])
			}
		}
	}
}

func TestDataManagerChunking(t *testing.T) {
	g := seq.NewGenerator(seq.Protein, 9)
	db := g.RandomDatabase("d", 30, seq.LengthModel{Mean: 100, StdDev: 10, Min: 80, Max: 120})
	dm, err := NewDataManager(db, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	var totalCost int64
	units := 0
	for {
		u, ok, err := dm.NextUnit(350)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if u.Cost > 350 && units > 0 {
			// A single oversized sequence may exceed the budget, but these
			// sequences are all ~100 residues.
			t.Errorf("unit cost %d exceeds budget", u.Cost)
		}
		totalCost += u.Cost
		units++
	}
	if totalCost != db.TotalResidues() {
		t.Errorf("units cover %d residues, database has %d", totalCost, db.TotalResidues())
	}
	if units < 8 {
		t.Errorf("only %d units from a 30-sequence database at budget 350", units)
	}
	if dm.Done() {
		t.Error("done before consuming")
	}
}

func TestDataManagerValidation(t *testing.T) {
	if _, err := NewDataManager(seq.NewDatabase(), fastConfig()); err == nil {
		t.Error("empty database accepted")
	}
	g := seq.NewGenerator(seq.Protein, 2)
	db := g.RandomDatabase("d", 3, seq.TypicalProtein)
	bad := fastConfig()
	bad.TopK = 0
	if _, err := NewDataManager(db, bad); err == nil {
		t.Error("bad config accepted")
	}
	if _, err := NewProblem("p", db, seq.NewDatabase(), fastConfig()); err == nil {
		t.Error("empty query set accepted")
	}
	dm, _ := NewDataManager(db, fastConfig())
	if err := dm.Consume(999, resultPayload{}); err == nil {
		t.Error("unknown unit consumed")
	}
}

func TestDNASearch(t *testing.T) {
	g := seq.NewGenerator(seq.DNA, 77)
	db := g.RandomDatabase("n", 20, seq.LengthModel{Mean: 200, StdDev: 40, Min: 100, Max: 400})
	target := db.Seqs[7]
	query := g.Mutate(target, "q0", 0.05, 0.01)
	queries := seq.NewDatabase(query)
	cfg := Config{
		Algorithm: "smith-waterman",
		Matrix:    "DNA",
		GapOpen:   8,
		GapExtend: 2,
		TopK:      5,
		MinScore:  1,
	}
	hits, err := SearchLocal(db, queries, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got := hits.Query("q0")
	if len(got) == 0 || got[0].Subject != target.ID {
		t.Errorf("mutated query did not recover its source: %v", got)
	}
}
