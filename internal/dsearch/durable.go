package dsearch

import (
	"fmt"
	"sort"

	"repro/internal/dist"
	"repro/internal/seq"
)

// Durability: the DSEARCH DataManager implements dist.DurableDM so a
// coordinator started with a data directory can journal its state and
// resume a half-finished search after a crash. The flattened state keeps
// the pending (dispatched, not yet folded) spans under their ORIGINAL unit
// IDs: a restored DataManager both accepts journal-tail folds for those
// IDs (replay) and re-emits the unconsumed ones to the fleet before
// cutting any new chunks, so no database residue is searched twice and
// none is lost.

// durableState is the journaled form of a DataManager. Field order is
// frozen by the gob encoding only within one binary's lifetime, which is
// exactly the durability contract: the restorer is compiled into the same
// binary that wrote the state (kinds are registry names, not wire
// versions).
type durableState struct {
	Config    Config
	Seqs      []*seq.Sequence
	Next      int
	Seq       int64
	Consumed  int
	Remaining int64
	Hits      []Hit
	// Pending maps outstanding unit IDs to their [from, to) database spans.
	Pending map[int64][2]int
}

// DurableKind implements dist.DurableDM; the algorithm name doubles as the
// restore-registry key, versioned the same way.
func (d *DataManager) DurableKind() string { return AlgorithmName }

// MarshalState implements dist.DurableDM.
func (d *DataManager) MarshalState() ([]byte, error) {
	st := durableState{
		Config:    d.config,
		Seqs:      d.db.Seqs,
		Next:      d.next,
		Seq:       d.seq,
		Consumed:  d.consumed,
		Remaining: d.remaining,
		Hits:      d.hits.All(),
		Pending:   d.inflight,
	}
	return dist.Encode(st)
}

// restoreDataManager rebuilds a DataManager from MarshalState's bytes. The
// pending spans go straight back into the inflight map — journal-tail
// folds replay against them — and into a resume queue NextUnit drains
// before advancing the database cursor.
func restoreDataManager(state []byte) (*DataManager, error) {
	st, err := dist.Decode[durableState](state)
	if err != nil {
		return nil, fmt.Errorf("dsearch: decoding durable state: %w", err)
	}
	if err := st.Config.Validate(); err != nil {
		return nil, fmt.Errorf("dsearch: restored config: %w", err)
	}
	if len(st.Seqs) == 0 {
		return nil, fmt.Errorf("dsearch: restored state has an empty database")
	}
	hits := NewHitList(st.Config.TopK)
	hits.Merge(st.Hits)
	d := &DataManager{
		db:        seq.NewDatabase(st.Seqs...),
		config:    st.Config,
		next:      st.Next,
		seq:       st.Seq,
		inflight:  st.Pending,
		remaining: st.Remaining,
		consumed:  st.Consumed,
		hits:      hits,
	}
	if d.inflight == nil {
		d.inflight = make(map[int64][2]int)
	}
	for id := range d.inflight {
		d.resume = append(d.resume, id)
	}
	// Map iteration order is random; re-emit in dispatch order so recovery
	// is deterministic and the earliest spans go back out first.
	sort.Slice(d.resume, func(i, j int) bool { return d.resume[i] < d.resume[j] })
	return d, nil
}

// nextResumedUnit re-emits one recovered pending span under its original
// unit ID, skipping IDs that a replayed journal fold already consumed.
// Returns nil once the resume queue is drained.
func (d *DataManager) nextResumedUnit() *dist.UnitOf[unitPayload] {
	for len(d.resume) > 0 {
		id := d.resume[0]
		d.resume = d.resume[1:]
		span, ok := d.inflight[id]
		if !ok {
			continue // folded during journal replay
		}
		var cost int64
		for i := span[0]; i < span[1]; i++ {
			cost += int64(d.db.Seqs[i].Len())
		}
		return &dist.UnitOf[unitPayload]{
			ID:        id,
			Algorithm: AlgorithmName,
			Payload:   unitPayload{Seqs: d.db.Seqs[span[0]:span[1]]},
			Cost:      cost,
		}
	}
	return nil
}

func init() {
	dist.RegisterDurableDM(AlgorithmName, func(state []byte) (dist.DataManager, error) {
		dm, err := restoreDataManager(state)
		if err != nil {
			return nil, err
		}
		return dist.AdaptDM[unitPayload, resultPayload](dm), nil
	})
}
