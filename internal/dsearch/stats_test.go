package dsearch

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/seq"
)

func TestFitGumbelRecoversKnownParameters(t *testing.T) {
	// Sample from a known Gumbel(mu=40, beta=6) via inverse CDF and check
	// the moment fit recovers the parameters.
	rng := rand.New(rand.NewSource(3))
	const mu, beta = 40.0, 6.0
	scores := make([]float64, 20000)
	for i := range scores {
		u := rng.Float64()
		scores[i] = mu - beta*math.Log(-math.Log(u))
	}
	c, err := FitGumbel(scores)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c.Mu-mu) > 0.5 {
		t.Errorf("mu = %.3f, want ~%.1f", c.Mu, mu)
	}
	if math.Abs(c.Beta-beta) > 0.3 {
		t.Errorf("beta = %.3f, want ~%.1f", c.Beta, beta)
	}
}

func TestFitGumbelValidation(t *testing.T) {
	if _, err := FitGumbel([]float64{1, 2, 3}); err == nil {
		t.Error("tiny sample accepted")
	}
	constant := make([]float64, 50)
	for i := range constant {
		constant[i] = 7
	}
	if _, err := FitGumbel(constant); err == nil {
		t.Error("constant scores accepted")
	}
}

func TestPValueMonotoneAndBounded(t *testing.T) {
	c := Calibration{Mu: 30, Beta: 5}
	prev := 1.1
	for s := 0.0; s <= 120; s += 5 {
		p := c.PValue(s)
		if p < 0 || p > 1 {
			t.Fatalf("PValue(%g) = %g out of [0,1]", s, p)
		}
		if p > prev {
			t.Fatalf("PValue not non-increasing at s=%g: %g after %g", s, p, prev)
		}
		prev = p
	}
	// Far-right tail: P ~ exp(-(s-mu)/beta), positive and tiny.
	if p := c.PValue(200); p <= 0 || p > 1e-10 {
		t.Errorf("tail PValue = %g", p)
	}
}

func TestEValueSeparatesPlantedFromBackground(t *testing.T) {
	gen := seq.NewGenerator(seq.Protein, 61)
	w := gen.NewSearchWorkload(80, 2, 3, seq.LengthModel{Mean: 150, StdDev: 30, Min: 80, Max: 250})
	cfg := DefaultConfig()
	cfg.TopK = 15

	hits, err := SearchLocal(w.DB, w.Queries, cfg)
	if err != nil {
		t.Fatal(err)
	}
	calib, err := Calibrate(w.DB, w.Queries, cfg, 60, 62)
	if err != nil {
		t.Fatal(err)
	}
	AnnotateEValues(hits, calib, w.DB.Len())

	for q, members := range w.Planted {
		planted := map[string]bool{}
		for _, m := range members {
			planted[m] = true
		}
		for _, h := range hits.Query(q) {
			if planted[h.Subject] {
				if h.EValue > 1e-3 {
					t.Errorf("%s/%s: planted homolog E-value %g, want << 1", q, h.Subject, h.EValue)
				}
			} else if h.EValue < 1e-4 {
				t.Errorf("%s/%s: background hit E-value %g suspiciously significant", q, h.Subject, h.EValue)
			}
		}
	}

	// FilterByEValue at a strict cutoff keeps exactly the planted pairs.
	sig := hits.FilterByEValue(1e-3)
	wantSig := 0
	for _, members := range w.Planted {
		wantSig += len(members)
	}
	if len(sig) != wantSig {
		t.Errorf("%d significant hits at E<=1e-3, want %d (the planted homologs): %+v", len(sig), wantSig, sig)
	}
	// Sorted ascending by E-value.
	for i := 1; i < len(sig); i++ {
		if sig[i].EValue < sig[i-1].EValue {
			t.Error("FilterByEValue output not sorted")
		}
	}
}

func TestCalibrateValidation(t *testing.T) {
	gen := seq.NewGenerator(seq.Protein, 71)
	db := gen.RandomDatabase("d", 5, seq.LengthModel{Mean: 100, StdDev: 10, Min: 50, Max: 150})
	q := gen.RandomDatabase("q", 1, seq.LengthModel{Mean: 100, StdDev: 10, Min: 50, Max: 150})
	cfg := DefaultConfig()
	if _, err := Calibrate(db, q, cfg, 5, 1); err == nil {
		t.Error("too few decoys accepted")
	}
	if _, err := Calibrate(&seq.Database{}, q, cfg, 20, 1); err == nil {
		t.Error("empty database accepted")
	}
	calib, err := Calibrate(db, q, cfg, 20, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(calib) != 1 {
		t.Fatalf("%d calibrations, want 1", len(calib))
	}
	// Determinism.
	calib2, _ := Calibrate(db, q, cfg, 20, 1)
	for k, c := range calib {
		if calib2[k] != c {
			t.Error("calibration not deterministic")
		}
	}
}
