package dsearch

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/dist"
	"repro/internal/sched"
	"repro/internal/seq"
)

func alignmentWorkload(t *testing.T) *seq.SearchWorkload {
	t.Helper()
	gen := seq.NewGenerator(seq.Protein, 31)
	return gen.NewSearchWorkload(40, 2, 3, seq.LengthModel{Mean: 120, StdDev: 30, Min: 60, Max: 200})
}

func TestReportAlignmentsLocal(t *testing.T) {
	w := alignmentWorkload(t)
	cfg := DefaultConfig()
	cfg.TopK = 5
	cfg.ReportAlignments = true
	hits, err := SearchLocal(w.DB, w.Queries, cfg)
	if err != nil {
		t.Fatal(err)
	}
	all := hits.All()
	if len(all) == 0 {
		t.Fatal("no hits")
	}
	for _, h := range all {
		if h.AlignedQuery == "" || h.AlignedSubject == "" {
			t.Fatalf("hit %s/%s missing alignment", h.Query, h.Subject)
		}
		if len(h.AlignedQuery) != len(h.AlignedSubject) {
			t.Fatalf("hit %s/%s: ragged alignment %d vs %d",
				h.Query, h.Subject, len(h.AlignedQuery), len(h.AlignedSubject))
		}
		if h.Identity <= 0 || h.Identity > 1 {
			t.Errorf("hit %s/%s: identity %g out of (0,1]", h.Query, h.Subject, h.Identity)
		}
		// Stripping gaps from the aligned query must give a substring of
		// the query (Smith-Waterman aligns a local region).
		gapless := strings.ReplaceAll(h.AlignedQuery, "-", "")
		var qres []byte
		for _, q := range w.Queries.Seqs {
			if q.ID == h.Query {
				qres = q.Residues
			}
		}
		if !strings.Contains(string(qres), gapless) {
			t.Errorf("hit %s/%s: aligned query is not a subsequence of the query", h.Query, h.Subject)
		}
	}
	// Planted homologs should show high identity.
	for q, members := range w.Planted {
		for _, h := range hits.Query(q) {
			for _, m := range members {
				if h.Subject == m && h.Identity < 0.5 {
					t.Errorf("planted homolog %s/%s identity %.2f < 0.5", q, m, h.Identity)
				}
			}
		}
	}
}

func TestReportAlignmentsDistributedMatchesLocal(t *testing.T) {
	w := alignmentWorkload(t)
	cfg := DefaultConfig()
	cfg.TopK = 5
	cfg.ReportAlignments = true

	ref, err := SearchLocal(w.DB, w.Queries, cfg)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewProblem("aln", w.DB, w.Queries, cfg)
	if err != nil {
		t.Fatal(err)
	}
	out, err := dist.RunLocal(context.Background(), p, 3, sched.Adaptive{Target: 50 * time.Millisecond, Bootstrap: 2000, Min: 500})
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeResult(out, cfg.TopK)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range w.Queries.Seqs {
		g, r := got.Query(q.ID), ref.Query(q.ID)
		if len(g) != len(r) {
			t.Fatalf("%s: %d hits distributed vs %d local", q.ID, len(g), len(r))
		}
		for i := range g {
			if g[i] != r[i] {
				t.Errorf("%s hit %d differs:\n dist  %+v\n local %+v", q.ID, i, g[i], r[i])
			}
		}
	}
}

func TestNoAlignmentsByDefault(t *testing.T) {
	w := alignmentWorkload(t)
	cfg := DefaultConfig()
	cfg.TopK = 3
	hits, err := SearchLocal(w.DB, w.Queries, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range hits.All() {
		if h.AlignedQuery != "" || h.Identity != 0 {
			t.Fatalf("alignment present without ReportAlignments: %+v", h)
		}
	}
	if strings.Contains(hits.Report(), "IDENT") {
		t.Error("report shows IDENT column without alignments")
	}
}

func TestReportShowsIdentityColumn(t *testing.T) {
	w := alignmentWorkload(t)
	cfg := DefaultConfig()
	cfg.TopK = 3
	cfg.ReportAlignments = true
	hits, err := SearchLocal(w.DB, w.Queries, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep := hits.Report()
	if !strings.Contains(rep, "IDENT") || !strings.Contains(rep, "%") {
		t.Errorf("report missing identity column:\n%s", rep)
	}
}

func TestFormatAlignment(t *testing.T) {
	h := Hit{
		Query: "q", Subject: "s", Score: 42, Identity: 0.75,
		AlignedQuery:   "ACDEFG-IK",
		AlignedSubject: "ACDEFGHIK",
	}
	out := FormatAlignment(h)
	if !strings.Contains(out, "q vs s") || !strings.Contains(out, "||||||") {
		t.Errorf("bad alignment block:\n%s", out)
	}
	if FormatAlignment(Hit{Query: "q"}) != "" {
		t.Error("alignment block for score-only hit")
	}
	// Long alignments wrap at 60 columns.
	long := Hit{
		Query: "q", Subject: "s",
		AlignedQuery:   strings.Repeat("A", 130),
		AlignedSubject: strings.Repeat("A", 130),
	}
	if got := strings.Count(FormatAlignment(long), "\n  "); got != 9 {
		t.Errorf("wrapped alignment has %d body lines, want 9 (3 blocks x 3)", got)
	}
}

func TestParseConfigReportAlignments(t *testing.T) {
	c, err := ParseConfig(strings.NewReader("report_alignments = true\n"))
	if err != nil {
		t.Fatal(err)
	}
	if !c.ReportAlignments {
		t.Error("report_alignments=true not applied")
	}
	c, err = ParseConfig(strings.NewReader("report_alignments = no\n"))
	if err != nil || c.ReportAlignments {
		t.Errorf("report_alignments=no: %v %v", c.ReportAlignments, err)
	}
	if _, err := ParseConfig(strings.NewReader("report_alignments = maybe\n")); err == nil {
		t.Error("bad boolean accepted")
	}
}
