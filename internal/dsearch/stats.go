package dsearch

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/seq"
)

// Score statistics for search reports. Optimal local alignment scores of a
// query against unrelated random sequences follow an extreme-value (Gumbel)
// distribution (Karlin–Altschul); DSEARCH calibrates it empirically — score
// the query against shuffled decoys, fit the Gumbel by the method of
// moments — and converts each hit's score into a P-value ("chance a random
// database sequence scores this well") and an E-value ("expected number of
// database sequences scoring this well by chance").

// eulerGamma is the Euler–Mascheroni constant (Gumbel mean = mu + gamma*beta).
const eulerGamma = 0.5772156649015329

// Calibration holds one query's fitted Gumbel null distribution.
type Calibration struct {
	// Mu and Beta are the Gumbel location and scale.
	Mu, Beta float64
	// Samples is the number of decoy scores behind the fit.
	Samples int
}

// FitGumbel fits a Gumbel distribution to decoy scores by the method of
// moments: beta = sd*sqrt(6)/pi, mu = mean - gamma*beta.
func FitGumbel(scores []float64) (Calibration, error) {
	if len(scores) < 10 {
		return Calibration{}, fmt.Errorf("dsearch: Gumbel fit needs >= 10 decoy scores, got %d", len(scores))
	}
	var mean float64
	for _, s := range scores {
		mean += s
	}
	mean /= float64(len(scores))
	var ss float64
	for _, s := range scores {
		d := s - mean
		ss += d * d
	}
	sd := math.Sqrt(ss / float64(len(scores)-1))
	if sd == 0 {
		return Calibration{}, fmt.Errorf("dsearch: decoy scores are constant (%g); cannot calibrate", mean)
	}
	beta := sd * math.Sqrt(6) / math.Pi
	return Calibration{
		Mu:      mean - eulerGamma*beta,
		Beta:    beta,
		Samples: len(scores),
	}, nil
}

// PValue returns P(S >= s) under the fitted null.
func (c Calibration) PValue(s float64) float64 {
	z := (s - c.Mu) / c.Beta
	// 1 - exp(-exp(-z)), computed stably for large z.
	ez := math.Exp(-z)
	if ez < 1e-8 {
		return ez // 1 - exp(-x) ~ x for tiny x
	}
	return 1 - math.Exp(-ez)
}

// EValue returns the expected number of database sequences scoring >= s by
// chance, for a database of dbSize sequences.
func (c Calibration) EValue(s float64, dbSize int) float64 {
	return float64(dbSize) * c.PValue(s)
}

// shuffle returns a composition-preserving permutation of residues.
func shuffle(rng *rand.Rand, residues []byte) []byte {
	out := append([]byte(nil), residues...)
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// Calibrate fits a per-query null distribution by scoring each query
// against nDecoys shuffled database sequences (sampled round-robin, so the
// decoy length distribution matches the database's). Deterministic for a
// given seed.
func Calibrate(db, queries *seq.Database, cfg Config, nDecoys int, seedVal int64) (map[string]Calibration, error) {
	if nDecoys < 10 {
		return nil, fmt.Errorf("dsearch: calibration needs >= 10 decoys, got %d", nDecoys)
	}
	if db == nil || db.Len() == 0 {
		return nil, fmt.Errorf("dsearch: empty database")
	}
	al, err := cfg.aligner()
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seedVal))
	decoys := make([][]byte, nDecoys)
	for i := range decoys {
		decoys[i] = shuffle(rng, db.Seqs[i%db.Len()].Residues)
	}
	out := make(map[string]Calibration, queries.Len())
	for _, q := range queries.Seqs {
		scores := make([]float64, nDecoys)
		for i, d := range decoys {
			scores[i] = float64(al.Score(q.Residues, d))
		}
		c, err := FitGumbel(scores)
		if err != nil {
			return nil, fmt.Errorf("dsearch: calibrating %s: %w", q.ID, err)
		}
		out[q.ID] = c
	}
	return out, nil
}

// AnnotateEValues fills the EValue field of every hit from the per-query
// calibrations. Hits whose query has no calibration are left untouched.
func AnnotateEValues(h *HitList, calib map[string]Calibration, dbSize int) {
	for q, hs := range h.hits {
		c, ok := calib[q]
		if !ok {
			continue
		}
		for i := range hs {
			hs[i].EValue = c.EValue(float64(hs[i].Score), dbSize)
		}
	}
}

// FilterByEValue returns the hits with EValue <= cutoff, preserving order.
func (h *HitList) FilterByEValue(cutoff float64) []Hit {
	var out []Hit
	for _, hit := range h.All() {
		if hit.EValue <= cutoff {
			out = append(out, hit)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].EValue < out[j].EValue })
	return out
}
