package dsearch

import (
	"context"
	"fmt"

	"repro/internal/align"
	"repro/internal/dist"
	"repro/internal/seq"
)

// AlgorithmName is the donor-side registry key for the DSEARCH search
// algorithm.
const AlgorithmName = "dsearch/v1"

// sharedData is the per-problem blob every donor fetches once: the query
// set and the search configuration.
type sharedData struct {
	Queries []*seq.Sequence
	Config  Config
}

// unitPayload is one database chunk.
type unitPayload struct {
	Seqs []*seq.Sequence
}

// resultPayload is a chunk's top hits (and the problem's final result).
type resultPayload struct {
	Hits []Hit
}

// DataManager partitions the database into dynamically sized chunks
// (granularity = residues, chosen by the scheduler per donor) and merges
// per-chunk hit lists. It implements the typed dist.TypedDM[unitPayload,
// resultPayload] — the adapter owns the gob codec — plus the CostReporter
// and Progresser extensions.
type DataManager struct {
	db     *seq.Database
	config Config

	next      int // index of next undispatched sequence
	seq       int64
	inflight  map[int64][2]int // unitID -> [from, to)
	remaining int64
	consumed  int
	hits      *HitList
	// resume holds unit IDs recovered from a journal snapshot whose spans
	// were dispatched but never folded; NextUnit re-emits them (under their
	// original IDs) before cutting new chunks. Empty except right after
	// restoreDataManager.
	resume []int64
}

var _ dist.TypedDM[unitPayload, resultPayload] = (*DataManager)(nil)
var _ dist.CostReporter = (*DataManager)(nil)
var _ dist.Progresser = (*DataManager)(nil)

// NewDataManager builds the server-side half of a DSEARCH problem.
func NewDataManager(db *seq.Database, cfg Config) (*DataManager, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if db == nil || db.Len() == 0 {
		return nil, fmt.Errorf("dsearch: empty database")
	}
	return &DataManager{
		db:        db,
		config:    cfg,
		inflight:  make(map[int64][2]int),
		remaining: db.TotalResidues(),
		hits:      NewHitList(cfg.TopK),
	}, nil
}

// NewProblem assembles a complete dist.Problem for a search; the typed
// adapter owns all payload marshalling.
func NewProblem(id string, db, queries *seq.Database, cfg Config) (*dist.Problem, error) {
	if queries == nil || queries.Len() == 0 {
		return nil, fmt.Errorf("dsearch: empty query set")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	db, queries, err := cfg.applyMask(db, queries)
	if err != nil {
		return nil, err
	}
	dm, err := NewDataManager(db, cfg)
	if err != nil {
		return nil, err
	}
	return dist.NewTypedProblem[unitPayload, resultPayload](id, dm, sharedData{Queries: queries.Seqs, Config: cfg})
}

// NextUnit implements dist.TypedDM: it takes sequences from the database
// until the residue budget is exhausted. Spans recovered from a journal
// snapshot are re-emitted first, whatever the budget — their extent was
// fixed when they were first dispatched.
func (d *DataManager) NextUnit(budget int64) (*dist.UnitOf[unitPayload], bool, error) {
	if u := d.nextResumedUnit(); u != nil {
		return u, true, nil
	}
	if d.next >= d.db.Len() {
		return nil, false, nil
	}
	if budget < 1 {
		budget = 1
	}
	from := d.next
	var cost int64
	for d.next < d.db.Len() {
		l := int64(d.db.Seqs[d.next].Len())
		if cost > 0 && cost+l > budget {
			break
		}
		cost += l
		d.next++
	}
	d.seq++
	d.inflight[d.seq] = [2]int{from, d.next}
	return &dist.UnitOf[unitPayload]{
		ID:        d.seq,
		Algorithm: AlgorithmName,
		Payload:   unitPayload{Seqs: d.db.Seqs[from:d.next]},
		Cost:      cost,
	}, true, nil
}

// Consume implements dist.TypedDM: merge a chunk's hits.
func (d *DataManager) Consume(unitID int64, res resultPayload) error {
	span, ok := d.inflight[unitID]
	if !ok {
		return fmt.Errorf("dsearch: result for unknown unit %d", unitID)
	}
	delete(d.inflight, unitID)
	d.hits.Merge(res.Hits)
	d.consumed += span[1] - span[0]
	for i := span[0]; i < span[1]; i++ {
		d.remaining -= int64(d.db.Seqs[i].Len())
	}
	return nil
}

// Done implements dist.TypedDM.
func (d *DataManager) Done() bool { return d.consumed == d.db.Len() }

// FinalResult implements dist.TypedDM: the merged hit list.
func (d *DataManager) FinalResult() (any, error) {
	return resultPayload{Hits: d.hits.All()}, nil
}

// RemainingCost implements dist.CostReporter.
func (d *DataManager) RemainingCost() int64 { return d.remaining }

// Progress implements dist.Progresser: database sequences searched so far.
func (d *DataManager) Progress() (done, total int) { return d.consumed, d.db.Len() }

// Hits exposes the accumulated hit list (for progress inspection).
func (d *DataManager) Hits() *HitList { return d.hits }

// Algorithm is the donor-side computation: align every query against every
// sequence in the chunk and return the per-query top hits. It implements
// dist.TypedAlgorithm[sharedData, unitPayload, resultPayload].
type Algorithm struct {
	queries []*seq.Sequence
	cfg     Config
	aligner align.Aligner
}

var _ dist.TypedAlgorithm[sharedData, unitPayload, resultPayload] = (*Algorithm)(nil)

// Init implements dist.TypedAlgorithm.
func (a *Algorithm) Init(sd sharedData) error {
	if len(sd.Queries) == 0 {
		return fmt.Errorf("dsearch: shared data has no queries")
	}
	al, err := sd.Config.aligner()
	if err != nil {
		return err
	}
	a.queries = sd.Queries
	a.cfg = sd.Config
	a.aligner = al
	return nil
}

// ProcessCtx implements dist.TypedAlgorithm. Cancellation is checked
// between query rows, so a server-side Forget aborts the scan within one
// query's worth of alignments.
func (a *Algorithm) ProcessCtx(ctx context.Context, up unitPayload) (resultPayload, error) {
	local := NewHitList(a.cfg.TopK)
	for _, q := range a.queries {
		if err := ctx.Err(); err != nil {
			return resultPayload{}, err
		}
		for _, s := range up.Seqs {
			score := a.aligner.Score(q.Residues, s.Residues)
			if score < a.cfg.MinScore {
				continue
			}
			local.Add(Hit{
				Query:      q.ID,
				Subject:    s.ID,
				Score:      score,
				SubjectLen: s.Len(),
			})
		}
	}
	hits := local.All()
	if a.cfg.ReportAlignments {
		a.attachAlignments(hits, up.Seqs)
	}
	return resultPayload{Hits: hits}, nil
}

// attachAlignments runs the traceback for each kept hit — only the top-K
// survivors pay the quadratic-space alignment, not every database
// sequence scanned.
func (a *Algorithm) attachAlignments(hits []Hit, chunk []*seq.Sequence) {
	queries := make(map[string][]byte, len(a.queries))
	for _, q := range a.queries {
		queries[q.ID] = q.Residues
	}
	subjects := make(map[string][]byte, len(chunk))
	for _, s := range chunk {
		subjects[s.ID] = s.Residues
	}
	for i := range hits {
		q, okQ := queries[hits[i].Query]
		s, okS := subjects[hits[i].Subject]
		if !okQ || !okS {
			continue
		}
		res := a.aligner.Align(q, s)
		hits[i].AlignedQuery = string(res.AlignedA)
		hits[i].AlignedSubject = string(res.AlignedB)
		hits[i].Identity = res.Identity()
	}
}

func init() {
	dist.RegisterTypedAlgorithm(AlgorithmName, func() dist.TypedAlgorithm[sharedData, unitPayload, resultPayload] {
		return &Algorithm{}
	})
}

// SearchLocal runs a search without the distributed machinery — the
// single-machine reference DSEARCH results are validated against.
func SearchLocal(db, queries *seq.Database, cfg Config) (*HitList, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	db, queries, err := cfg.applyMask(db, queries)
	if err != nil {
		return nil, err
	}
	al, err := cfg.aligner()
	if err != nil {
		return nil, err
	}
	hits := NewHitList(cfg.TopK)
	for _, q := range queries.Seqs {
		for _, s := range db.Seqs {
			score := al.Score(q.Residues, s.Residues)
			if score < cfg.MinScore {
				continue
			}
			hits.Add(Hit{Query: q.ID, Subject: s.ID, Score: score, SubjectLen: s.Len()})
		}
	}
	if cfg.ReportAlignments {
		a := &Algorithm{queries: queries.Seqs, cfg: cfg, aligner: al}
		kept := hits.All()
		a.attachAlignments(kept, db.Seqs)
		merged := NewHitList(cfg.TopK)
		merged.Merge(kept)
		return merged, nil
	}
	return hits, nil
}

// DecodeResult unpacks a completed problem's final payload.
func DecodeResult(payload []byte, k int) (*HitList, error) {
	res, err := dist.Decode[resultPayload](payload)
	if err != nil {
		return nil, err
	}
	h := NewHitList(k)
	h.Merge(res.Hits)
	return h, nil
}
