// Command speedup regenerates the paper's evaluation figures on the
// discrete-event cluster simulator and prints them as tables (the text
// analogue of the speedup plots).
//
// Usage:
//
//	speedup -fig 1              # Figure 1: DSEARCH, 1-83 homogeneous donors
//	speedup -fig 2              # Figure 2: DPRml, 6 instances, 1-40 donors
//	speedup -fig 2 -instances 1 # the single-instance ablation
//	speedup -ablation           # adaptive vs fixed vs GSS vs factoring vs TSS
//	speedup -all                # everything EXPERIMENTS.md records
//	speedup -all -csv out.csv   # also dump every series as CSV for plotting
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"sort"
	"time"

	"repro/internal/figures"
	"repro/internal/simnet"
)

func main() {
	var (
		fig       = flag.Int("fig", 0, "figure to regenerate (1 or 2)")
		instances = flag.Int("instances", 6, "figure 2: simultaneous problem instances")
		taxa      = flag.Int("taxa", 50, "figure 2: taxa in the dataset")
		ablation  = flag.Bool("ablation", false, "run the scheduling-policy ablation")
		all       = flag.Bool("all", false, "run every experiment")
		seed      = flag.Int64("seed", 0, "override the experiment seed (0 = default)")
		csvPath   = flag.String("csv", "", "also write the speedup series to this CSV file")
	)
	flag.Parse()

	var csvOut io.Writer
	csvHeader := true
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		csvOut = f
	}
	emit := func(series string, pts []simnet.SpeedupPoint) {
		if csvOut == nil {
			return
		}
		if err := figures.WriteCSV(csvOut, series, pts, csvHeader); err != nil {
			log.Fatal(err)
		}
		csvHeader = false
	}

	ran := false
	if *all || *fig == 1 {
		emit("fig1", runFigure1(*seed))
		ran = true
	}
	if *all || *fig == 2 {
		emit(fmt.Sprintf("fig2-x%d", *instances), runFigure2(*instances, *taxa, *seed))
		ran = true
	}
	if *all {
		emit("fig2-x1", runFigure2(1, *taxa, *seed)) // single-instance ablation
	}
	if *all || *ablation {
		runAblation(*seed)
		ran = true
	}
	if !ran {
		flag.Usage()
		os.Exit(2)
	}
}

func runFigure1(seed int64) []simnet.SpeedupPoint {
	cfg := figures.DefaultFigure1()
	if seed != 0 {
		cfg.Seed = seed
	}
	pts, err := figures.Figure1(cfg, nil)
	if err != nil {
		log.Fatal(err)
	}
	figures.WriteTable(os.Stdout,
		"Figure 1: DSEARCH speedup, homogeneous semi-idle lab (P-III class)", pts)
	fmt.Println()
	return pts
}

func runFigure2(instances, taxa int, seed int64) []simnet.SpeedupPoint {
	cfg := figures.DefaultFigure2()
	cfg.Instances = instances
	cfg.Taxa = taxa
	if seed != 0 {
		cfg.Seed = seed
	}
	pts, err := figures.Figure2(cfg, nil)
	if err != nil {
		log.Fatal(err)
	}
	title := fmt.Sprintf("Figure 2: DPRml speedup, %d taxa, %d instance(s) running simultaneously",
		cfg.Taxa, cfg.Instances)
	figures.WriteTable(os.Stdout, title, pts)
	fmt.Println()
	return pts
}

func runAblation(seed int64) {
	if seed == 0 {
		seed = 3
	}
	const donors, totalCost = 60, 500_000
	makespans, err := figures.AdaptiveVsFixed(donors, totalCost, seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Scheduling-policy ablation: %d heterogeneous donors, total cost %d\n", donors, totalCost)
	names := make([]string, 0, len(makespans))
	for n := range makespans {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool { return makespans[names[i]] < makespans[names[j]] })
	best := makespans[names[0]]
	for _, n := range names {
		fmt.Printf("%16s  makespan %12s  (%.2fx best)\n",
			n, makespans[n].Round(time.Second), makespans[n].Seconds()/best.Seconds())
	}
	fmt.Println()
}
