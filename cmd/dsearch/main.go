// Command dsearch runs a sensitive database search on the local machine,
// parallelised over in-process workers — the single-box form of DSEARCH.
// For multi-machine runs use cmd/server -app dsearch plus cmd/donor.
//
// Usage:
//
//	dsearch -db db.fasta -queries q.fasta [-config dsearch.conf] [-workers 8]
//
// With -demo, a synthetic workload with planted homolog families is
// generated and searched, and recovery of the planted members is reported.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"runtime"
	"time"

	"repro/internal/dist"
	"repro/internal/dsearch"
	"repro/internal/sched"
	"repro/internal/seq"
)

func main() {
	var (
		dbPath    = flag.String("db", "", "FASTA database")
		queryPath = flag.String("queries", "", "FASTA query set")
		confPath  = flag.String("config", "", "configuration file")
		workers   = flag.Int("workers", runtime.GOMAXPROCS(0), "in-process workers")
		policy    = flag.String("policy", "adaptive:1s", "scheduling policy")
		demo      = flag.Bool("demo", false, "run on a generated synthetic workload")
		seed      = flag.Int64("seed", 1, "demo workload seed")
		showAln   = flag.Bool("alignments", false, "compute tracebacks and print each query's best alignment")
		evalues   = flag.Bool("evalues", false, "calibrate Gumbel statistics on shuffled decoys and report E-values")
		decoys    = flag.Int("decoys", 100, "decoy count for E-value calibration")
		mask      = flag.Bool("mask", false, "mask low-complexity regions (SEG/DUST-style) before searching")
	)
	flag.Parse()

	cfg := dsearch.DefaultConfig()
	if *confPath != "" {
		f, err := os.Open(*confPath)
		if err != nil {
			log.Fatalf("dsearch: %v", err)
		}
		var perr error
		cfg, perr = dsearch.ParseConfig(f)
		f.Close()
		if perr != nil {
			log.Fatalf("dsearch: %v", perr)
		}
	}

	var db, queries *seq.Database
	var planted map[string][]string
	switch {
	case *demo:
		g := seq.NewGenerator(seq.Protein, *seed)
		w := g.NewSearchWorkload(300, 5, 4, seq.LengthModel{Mean: 200, StdDev: 60, Min: 60, Max: 500})
		db, queries, planted = w.DB, w.Queries, w.Planted
		fmt.Printf("demo: %d database sequences (%d residues), %d queries, %d planted families\n",
			db.Len(), db.TotalResidues(), queries.Len(), len(planted))
	case *dbPath != "" && *queryPath != "":
		var err error
		if db, err = seq.ReadFASTAFile(*dbPath); err != nil {
			log.Fatalf("dsearch: %v", err)
		}
		if queries, err = seq.ReadFASTAFile(*queryPath); err != nil {
			log.Fatalf("dsearch: %v", err)
		}
	default:
		log.Fatal("dsearch: need -db and -queries, or -demo")
	}

	if *showAln {
		cfg.ReportAlignments = true
	}
	if *mask {
		cfg.MaskLowComplexity = true
	}
	pol, err := sched.ByName(*policy)
	if err != nil {
		log.Fatalf("dsearch: %v", err)
	}
	problem, err := dsearch.NewProblem("dsearch-cli", db, queries, cfg)
	if err != nil {
		log.Fatalf("dsearch: %v", err)
	}
	// An interrupt cancels the run context: the problem is forgotten and
	// the in-process workers abort their in-flight chunks.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	start := time.Now()
	out, err := dist.RunLocal(ctx, problem, *workers, pol)
	if err != nil {
		log.Fatalf("dsearch: %v", err)
	}
	hits, err := dsearch.DecodeResult(out, cfg.TopK)
	if err != nil {
		log.Fatalf("dsearch: %v", err)
	}
	fmt.Printf("search complete in %s on %d workers (%s, %s)\n",
		time.Since(start).Round(time.Millisecond), *workers, cfg.Algorithm, cfg.Matrix)

	if *evalues {
		calib, err := dsearch.Calibrate(db, queries, cfg, *decoys, *seed+1000)
		if err != nil {
			log.Fatalf("dsearch: %v", err)
		}
		dsearch.AnnotateEValues(hits, calib, db.Len())
	}
	fmt.Print(hits.Report())

	if *showAln {
		fmt.Println()
		for _, q := range queries.Seqs {
			if top := hits.Query(q.ID); len(top) > 0 {
				fmt.Print(dsearch.FormatAlignment(top[0]))
			}
		}
	}

	if planted != nil {
		fmt.Println("\nplanted-homology recovery:")
		for q, members := range planted {
			found := 0
			top := hits.Query(q)
			in := map[string]bool{}
			for _, h := range top {
				in[h.Subject] = true
			}
			for _, m := range members {
				if in[m] {
					found++
				}
			}
			fmt.Printf("  %s: %d/%d family members in top %d\n", q, found, len(members), cfg.TopK)
		}
	}
}
