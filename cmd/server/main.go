// Command server runs the distributed system's coordinating node and
// submits one problem to it, then waits for donors to complete the work and
// prints the result. The two bioinformatics applications of the paper are
// built in; pick one with -app.
//
// DSEARCH:
//
//	server -app dsearch -db db.fasta -queries q.fasta [-config dsearch.conf]
//
// DPRml:
//
//	server -app dprml -alignment aln.fasta [-model HKY85:kappa=2] [-gamma 4 -alpha 0.5]
//
// Donors then connect with:  donor -server <host>:7070
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/dist"
	"repro/internal/dprml"
	"repro/internal/dsearch"
	"repro/internal/sched"
	"repro/internal/seq"
)

func main() {
	var (
		rpcAddr  = flag.String("rpc", ":7070", "control (RPC) listen address")
		bulkAddr = flag.String("bulk", ":7071", "bulk data listen address")
		policy   = flag.String("policy", "adaptive:5s", "scheduling policy (fixed:N | adaptive:DUR | gss[:k] | factoring)")
		lease    = flag.Duration("lease", 2*time.Minute, "work unit reissue timeout")
		app      = flag.String("app", "", "application: dsearch | dprml")

		// DSEARCH flags
		dbPath    = flag.String("db", "", "dsearch: FASTA database")
		queryPath = flag.String("queries", "", "dsearch: FASTA query set")
		confPath  = flag.String("config", "", "dsearch: configuration file")

		// DPRml flags
		alnPath = flag.String("alignment", "", "dprml: FASTA alignment")
		model   = flag.String("model", "HKY85:kappa=2", "dprml: substitution model spec")
		gamma   = flag.Int("gamma", 1, "dprml: discrete gamma categories")
		alpha   = flag.Float64("alpha", 0.5, "dprml: gamma shape")
	)
	flag.Parse()

	pol, err := sched.ByName(*policy)
	if err != nil {
		log.Fatalf("server: %v", err)
	}
	ns, err := dist.ListenAndServe(*rpcAddr, *bulkAddr, dist.ServerOptions{
		Policy: pol,
		Lease:  *lease,
	})
	if err != nil {
		log.Fatalf("server: %v", err)
	}
	defer ns.Close()
	log.Printf("server: control on %s, bulk data on %s, policy %s", ns.RPCAddr(), ns.BulkAddr(), pol.Name())

	var problem *dist.Problem
	switch *app {
	case "dsearch":
		problem, err = buildDSearch(*dbPath, *queryPath, *confPath)
	case "dprml":
		problem, err = buildDPRml(*alnPath, *model, *gamma, *alpha)
	default:
		log.Fatalf("server: -app must be dsearch or dprml")
	}
	if err != nil {
		log.Fatalf("server: %v", err)
	}
	if err := ns.Submit(problem); err != nil {
		log.Fatalf("server: %v", err)
	}
	log.Printf("server: problem %q submitted — waiting for donors", problem.ID)

	start := time.Now()
	stopProgress := make(chan struct{})
	go func() {
		ticker := time.NewTicker(10 * time.Second)
		defer ticker.Stop()
		for {
			select {
			case <-stopProgress:
				return
			case <-ticker.C:
				st, err := ns.Status(problem.ID)
				if err != nil {
					return
				}
				if st.AppTotal > 0 {
					log.Printf("server: progress %d/%d, %d units done (%d in flight, %d reissued, %d donors)",
						st.AppDone, st.AppTotal, st.Completed, st.Inflight, st.Reissued, ns.DonorCount())
				} else {
					log.Printf("server: %d units done (%d in flight, %d reissued, %d donors)",
						st.Completed, st.Inflight, st.Reissued, ns.DonorCount())
				}
			}
		}
	}()
	out, err := ns.Wait(problem.ID)
	close(stopProgress)
	if err != nil {
		log.Fatalf("server: problem failed: %v", err)
	}
	elapsed := time.Since(start)
	dispatched, completed, reissued, _ := ns.Stats(problem.ID)
	log.Printf("server: done in %s (%d units dispatched, %d completed, %d reissued, %d donors)",
		elapsed.Round(time.Millisecond), dispatched, completed, reissued, ns.DonorCount())
	// Retire the problem now that its stats have been read: a long-lived
	// server submitting job after job evicts each one's state and bulk
	// blobs this way instead of growing without bound.
	if err := ns.Forget(problem.ID); err != nil {
		log.Printf("server: forget: %v", err)
	}

	switch *app {
	case "dsearch":
		hits, err := dsearch.DecodeResult(out, 1<<30)
		if err != nil {
			log.Fatalf("server: %v", err)
		}
		fmt.Print(hits.Report())
	case "dprml":
		res, err := dprml.DecodeResult(out)
		if err != nil {
			log.Fatalf("server: %v", err)
		}
		fmt.Print(res.String())
	}
}

func buildDSearch(dbPath, queryPath, confPath string) (*dist.Problem, error) {
	if dbPath == "" || queryPath == "" {
		return nil, fmt.Errorf("dsearch needs -db and -queries")
	}
	db, err := seq.ReadFASTAFile(dbPath)
	if err != nil {
		return nil, err
	}
	queries, err := seq.ReadFASTAFile(queryPath)
	if err != nil {
		return nil, err
	}
	cfg := dsearch.DefaultConfig()
	if confPath != "" {
		f, err := os.Open(confPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		cfg, err = dsearch.ParseConfig(f)
		if err != nil {
			return nil, err
		}
	}
	return dsearch.NewProblem("dsearch", db, queries, cfg)
}

func buildDPRml(alnPath, model string, gamma int, alpha float64) (*dist.Problem, error) {
	if alnPath == "" {
		return nil, fmt.Errorf("dprml needs -alignment")
	}
	f, err := os.Open(alnPath)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	aln, err := seq.ReadAlignmentFASTA(f)
	if err != nil {
		return nil, err
	}
	return dprml.NewProblem("dprml", aln, dprml.Options{
		Model:           model,
		GammaCategories: gamma,
		GammaAlpha:      alpha,
	})
}
