// Command server runs the distributed system's coordinating node and
// submits one problem to it, then waits for donors to complete the work and
// prints the result. The two bioinformatics applications of the paper are
// built in; pick one with -app.
//
// DSEARCH:
//
//	server -app dsearch -db db.fasta -queries q.fasta [-config dsearch.conf]
//
// DPRml:
//
//	server -app dprml -alignment aln.fasta [-model HKY85:kappa=2] [-gamma 4 -alpha 0.5]
//
// Donors then connect with:  donor -server <host>:7070
//
// Progress is streamed from the server's Watch event channel (no Status
// polling). An interrupt (SIGINT) forgets the problem, which cancels the
// donors' in-flight units before the server exits. With -data-dir the
// coordinator is durable: mutations are journaled, SIGTERM checkpoints and
// exits cleanly instead of forgetting, and a restart on the same directory
// resumes the problem where it left off — donors redial and keep working.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/dist"
	"repro/internal/dprml"
	"repro/internal/dsearch"
	"repro/internal/sched"
	"repro/internal/seq"
)

func main() {
	var (
		rpcAddr     = flag.String("rpc", ":7070", "control (RPC) listen address")
		bulkAddr    = flag.String("bulk", ":7071", "bulk data listen address")
		policy      = flag.String("policy", "adaptive:5s", "scheduling policy (fixed:N | adaptive:DUR | gss[:k] | factoring)")
		lease       = flag.Duration("lease", 2*time.Minute, "work unit reissue timeout")
		longPoll    = flag.Duration("long-poll", 45*time.Second, "max server-side park per WaitTask long-poll (<=0 = disable push dispatch; donors then poll)")
		contentBulk = flag.Bool("content-bulk", true, "content-addressed shared blobs (one stored copy per distinct alignment, digest-verified donor caching); false restores per-problem bulk keys")
		flatCodec   = flag.Bool("flat-codec", true, "flat control-channel codec (negotiated per connection; false keeps every donor on gob)")
		batch       = flag.Int("dispatch-batch", 8, "max units per batched WaitTask reply (<=1 = single-unit dispatch)")
		speculate   = flag.Float64("speculate-after", 0, "re-dispatch straggler units to idle donors once this fraction of the problem is complete, first result wins (0 = off; 0.9 is a reasonable start)")
		verifyFrac  = flag.Float64("verify-fraction", 0, "spot-check this fraction of units by redundant dispatch to distinct donors, folding only quorum-agreed results (0 = trust every donor; 0.05 is a reasonable start)")
		verifyQuo   = flag.Int("verify-quorum", 2, "replica results that must agree before a spot-checked unit folds (min 2; needs -verify-fraction)")
		quarBelow   = flag.Float64("quarantine-below", 0, "trust floor under which a donor stops receiving work and its results are rejected (0 = default 0.3, negative = never quarantine; needs -verify-fraction)")
		dataDir     = flag.String("data-dir", "", "durability directory: journal mutations and resume the problem after a crash or SIGTERM (empty = in-memory only)")
		snapRecords = flag.Int("snapshot-records", 0, "journal records that trigger a background checkpoint (0 = default; needs -data-dir)")
		app         = flag.String("app", "", "application: dsearch | dprml")
		progress    = flag.Duration("progress", 10*time.Second, "minimum interval between progress log lines")

		// DSEARCH flags
		dbPath    = flag.String("db", "", "dsearch: FASTA database")
		queryPath = flag.String("queries", "", "dsearch: FASTA query set")
		confPath  = flag.String("config", "", "dsearch: configuration file")

		// DPRml flags
		alnPath = flag.String("alignment", "", "dprml: FASTA alignment")
		model   = flag.String("model", "HKY85:kappa=2", "dprml: substitution model spec")
		gamma   = flag.Int("gamma", 1, "dprml: discrete gamma categories")
		alpha   = flag.Float64("alpha", 0.5, "dprml: gamma shape")
	)
	flag.Parse()

	// SIGINT and SIGTERM both cancel ctx, but they mean different things at
	// shutdown: SIGINT abandons the problem (forget + cancel donor work),
	// SIGTERM asks for a graceful stop — with -data-dir that is "checkpoint
	// and exit so a restart resumes". Remember which one fired.
	ctx, stop := context.WithCancel(context.Background())
	defer stop()
	var gotTerm atomic.Bool
	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig, ok := <-sigCh
		if !ok {
			return
		}
		if sig == syscall.SIGTERM {
			gotTerm.Store(true)
		}
		stop()
	}()
	defer signal.Stop(sigCh)

	pol, err := sched.ByName(*policy)
	if err != nil {
		log.Fatalf("server: %v", err)
	}
	// "-long-poll 0" disables push dispatch (the WaitTask capability is
	// then not advertised and donors fall back to jittered polling).
	longPollMax := *longPoll
	if longPollMax <= 0 {
		longPollMax = -1
	}
	// "-dispatch-batch 1" (or less) disables batching; the option layer
	// treats 0 as "default", so map it to the negative sentinel.
	dispatchBatch := *batch
	if dispatchBatch <= 1 {
		dispatchBatch = -1
	}
	if *app != "dsearch" && *app != "dprml" {
		log.Fatalf("server: -app must be dsearch or dprml")
	}
	ns, err := dist.ListenAndServe(*rpcAddr, *bulkAddr,
		dist.WithPolicy(pol),
		dist.WithLeaseTTL(*lease),
		dist.WithLongPoll(longPollMax),
		dist.WithContentBulk(*contentBulk),
		dist.WithFlatCodec(*flatCodec),
		dist.WithDispatchBatch(dispatchBatch),
		dist.WithDataDir(*dataDir),
		dist.WithSnapshotBudget(0, *snapRecords),
		dist.WithSpeculation(*speculate),
		dist.WithVerify(*verifyFrac, *verifyQuo),
		dist.WithQuarantineBelow(*quarBelow),
	)
	if err != nil {
		log.Fatalf("server: %v", err)
	}
	defer ns.Close()
	log.Printf("server: control on %s, bulk data on %s, policy %s", ns.RPCAddr(), ns.BulkAddr(), pol.Name())

	// Both applications register their problem under the app name, so that
	// is the ID a restarted durable server finds in its journal.
	problemID := *app
	resumed := false
	if rec := ns.Recovery(); rec != nil {
		for _, rp := range rec.Problems {
			log.Printf("server: recovered problem %q from journal (epoch %d, %d units completed, %d requeued)",
				rp.ProblemID, rp.Epoch, rp.Completed, rp.Requeued)
			if rp.ProblemID == problemID {
				resumed = true
			}
		}
		if rec.FoldsReplayed > 0 || rec.FoldsSkipped > 0 {
			log.Printf("server: replayed %d journaled results (%d skipped)", rec.FoldsReplayed, rec.FoldsSkipped)
		}
		if rec.Truncated {
			log.Printf("server: journal tail was torn; recovered to the last intact record")
		}
		for _, skipped := range rec.Skipped {
			log.Printf("server: could not restore problem %s", skipped)
		}
	}

	if resumed {
		log.Printf("server: resuming recovered problem %q — waiting for donors to redial", problemID)
	} else {
		var problem *dist.Problem
		switch *app {
		case "dsearch":
			problem, err = buildDSearch(*dbPath, *queryPath, *confPath)
		case "dprml":
			problem, err = buildDPRml(*alnPath, *model, *gamma, *alpha)
		}
		if err != nil {
			log.Fatalf("server: %v", err)
		}
		if err := ns.Submit(ctx, problem); err != nil {
			log.Fatalf("server: %v", err)
		}
		log.Printf("server: problem %q submitted — waiting for donors", problem.ID)
	}

	// Event-stream progress: the Watch channel replaces the old Status
	// polling ticker. Unit-level events are folded into at most one log
	// line per -progress interval; terminal events always log.
	events, err := ns.Watch(ctx, problemID)
	if err != nil {
		log.Fatalf("server: watch: %v", err)
	}
	go logProgress(ns, events, *progress)

	start := time.Now()
	out, err := ns.Wait(ctx, problemID)
	if err != nil {
		if ctx.Err() != nil {
			if gotTerm.Load() && *dataDir != "" {
				// SIGTERM on a durable server: checkpoint and exit without
				// forgetting, so a restart on the same -data-dir resumes the
				// problem. Close writes the final snapshot.
				log.Printf("server: SIGTERM — checkpointing %q to %s for resumption", problemID, *dataDir)
				if cerr := ns.Close(); cerr != nil {
					log.Printf("server: checkpoint: %v", cerr)
					os.Exit(1)
				}
				os.Exit(0)
			}
			// Interrupted: forget the problem so donors holding its units
			// receive cancel notices and abort instead of computing
			// results nobody will fold.
			log.Printf("server: interrupted — forgetting %q to cancel donor work", problemID)
			_ = ns.Forget(problemID)
			// Busy donors learn of the cancellation by polling CancelNotices
			// (default every 500ms); keep the control channel up a couple of
			// poll periods so they abort their in-flight unit instead of
			// discovering a dead socket only after finishing it.
			time.Sleep(1200 * time.Millisecond)
			_ = ns.Close() // os.Exit skips the deferred Close
			os.Exit(1)
		}
		log.Fatalf("server: problem failed: %v", err)
	}
	elapsed := time.Since(start)
	st, _ := ns.Stats(ctx, problemID)
	log.Printf("server: done in %s (%d units dispatched, %d completed, %d reissued, %d donors)",
		elapsed.Round(time.Millisecond), st.Dispatched, st.Completed, st.Reissued, ns.DonorCount())
	// Retire the problem now that its stats have been read: a long-lived
	// server submitting job after job evicts each one's state and bulk
	// blobs this way instead of growing without bound.
	if err := ns.Forget(problemID); err != nil {
		log.Printf("server: forget: %v", err)
	}

	switch *app {
	case "dsearch":
		hits, err := dsearch.DecodeResult(out, 1<<30)
		if err != nil {
			log.Fatalf("server: %v", err)
		}
		fmt.Print(hits.Report())
	case "dprml":
		res, err := dprml.DecodeResult(out)
		if err != nil {
			log.Fatalf("server: %v", err)
		}
		fmt.Print(res.String())
	}
}

// logProgress consumes one problem's Watch stream, printing a progress
// line at most every interval (terminal events always print). The channel
// closes with the stream, ending the goroutine.
func logProgress(ns *dist.NetworkServer, events <-chan dist.Event, interval time.Duration) {
	var lastLog time.Time
	for ev := range events {
		switch {
		case ev.Kind.Terminal():
			switch ev.Kind {
			case dist.EventFinished:
				log.Printf("server: %s finished (%d units)", ev.ProblemID, ev.Completed)
			case dist.EventForgotten:
				log.Printf("server: %s forgotten", ev.ProblemID)
			default:
				if !errors.Is(ev.Err, dist.ErrClosed) {
					log.Printf("server: %s failed: %v", ev.ProblemID, ev.Err)
				}
			}
		case ev.Kind == dist.EventDonorQuarantined:
			log.Printf("server: donor %s quarantined — trust fell below the floor; its leases on %s were requeued", ev.Donor, ev.ProblemID)
		case ev.Kind == dist.EventQuorumConflict:
			log.Printf("server: quorum conflict on %s unit %d — discarded a disagreeing result from donor %s", ev.ProblemID, ev.UnitID, ev.Donor)
		case ev.Kind == dist.EventProgress && time.Since(lastLog) >= interval:
			lastLog = time.Now()
			if ev.AppTotal > 0 {
				log.Printf("server: progress %d/%d, %d units done (%d in flight, %d donors)",
					ev.AppDone, ev.AppTotal, ev.Completed, ev.Inflight, ns.DonorCount())
			} else {
				log.Printf("server: %d units done (%d in flight, %d donors)",
					ev.Completed, ev.Inflight, ns.DonorCount())
			}
		}
	}
}

func buildDSearch(dbPath, queryPath, confPath string) (*dist.Problem, error) {
	if dbPath == "" || queryPath == "" {
		return nil, fmt.Errorf("dsearch needs -db and -queries")
	}
	db, err := seq.ReadFASTAFile(dbPath)
	if err != nil {
		return nil, err
	}
	queries, err := seq.ReadFASTAFile(queryPath)
	if err != nil {
		return nil, err
	}
	cfg := dsearch.DefaultConfig()
	if confPath != "" {
		f, err := os.Open(confPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		cfg, err = dsearch.ParseConfig(f)
		if err != nil {
			return nil, err
		}
	}
	return dsearch.NewProblem("dsearch", db, queries, cfg)
}

func buildDPRml(alnPath, model string, gamma int, alpha float64) (*dist.Problem, error) {
	if alnPath == "" {
		return nil, fmt.Errorf("dprml needs -alignment")
	}
	f, err := os.Open(alnPath)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	aln, err := seq.ReadAlignmentFASTA(f)
	if err != nil {
		return nil, err
	}
	return dprml.NewProblem("dprml", aln, dprml.Options{
		Model:           model,
		GammaCategories: gamma,
		GammaAlpha:      alpha,
	})
}
