// Command donor runs one donor (client) process: it connects to a running
// server, fetches work units, computes them with the algorithms compiled
// into this binary (DSEARCH and DPRml are registered), and returns results.
// Run it as a low-priority background service on any machine with spare
// cycles — the paper deployed it on ~200 lab PCs and cluster nodes.
//
// Usage:
//
//	donor -server host:7070 [-name lab-pc-17] [-throttle 50ms]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"time"

	"repro/internal/dist"

	// Register the bioinformatics algorithms in this donor binary.
	_ "repro/internal/dprml"
	_ "repro/internal/dsearch"
)

func main() {
	var (
		server     = flag.String("server", "127.0.0.1:7070", "server RPC address")
		name       = flag.String("name", hostnameOr("donor"), "donor display name")
		throttle   = flag.Duration("throttle", 0, "pause between units (be a polite background service)")
		retry      = flag.Duration("retry", 30*time.Second, "max backoff while reconnecting to a vanished server (0 = exit instead of retrying)")
		cancelPoll = flag.Duration("cancel-poll", 500*time.Millisecond, "how often to poll for server cancel notices mid-unit (<0 disables)")
		longPoll   = flag.Duration("long-poll", 45*time.Second, "max park per WaitTask long-poll when the server supports it (<=0 = legacy RequestTask polling)")
		blobCache  = flag.Int64("blob-cache", 256<<20, "shared-blob cache budget in bytes (<=0 keeps only the most recent blob); also bounds resident per-problem state")
		flatCodec  = flag.Bool("flat-codec", true, "upgrade the control connection to the flat codec when the server offers it (false keeps gob)")
		batch      = flag.Int("batch", 8, "units requested per WaitTask long-poll against a batch-capable server (<=1 = single-unit)")
	)
	flag.Parse()

	const dialTimeout = 30 * time.Second
	dialOpts := []dist.DialOption{dist.WithDialFlatCodec(*flatCodec)}
	client, err := dist.Dial(*server, dialTimeout, dialOpts...)
	if err != nil {
		log.Fatalf("donor: %v", err)
	}
	defer client.Close()

	// A background-service donor outlives server restarts: when the
	// connection drops without an explicit close, keep redialing with
	// capped exponential backoff. Only the server's own Close — or an
	// interrupt — ends the loop.
	var redial func() (dist.Coordinator, error)
	if *retry > 0 {
		redial = func() (dist.Coordinator, error) { return dist.Dial(*server, dialTimeout, dialOpts...) }
	}

	// A donor prefers the long-poll dispatch channel (negotiated at Dial,
	// so an old server transparently degrades to polling); "-long-poll 0"
	// forces the legacy jittered poll loop.
	longPollWait := *longPoll
	if longPollWait <= 0 {
		longPollWait = -1
	}

	// "-blob-cache 0" means no caching beyond the blob in use; the option
	// layer treats 0 as "default", so map it to the negative sentinel.
	blobBudget := *blobCache
	if blobBudget <= 0 {
		blobBudget = -1
	}

	// "-batch 1" (or less) keeps single-unit dispatch; the option layer
	// treats 0 as "default", so map it to the negative sentinel.
	taskBatch := *batch
	if taskBatch <= 1 {
		taskBatch = -1
	}

	d := dist.NewDonor(client,
		dist.WithName(*name),
		dist.WithThrottle(*throttle),
		dist.WithLogf(log.Printf),
		dist.WithRedial(redial),
		dist.WithRedialBackoff(0, *retry),
		dist.WithCancelPoll(*cancelPoll),
		dist.WithLongPollWait(longPollWait),
		dist.WithBlobCacheBytes(blobBudget),
		dist.WithTaskBatch(taskBatch),
	)

	// First interrupt: finish (or abort, via the cancelled context) the
	// unit in progress and exit cleanly. Unregistering the handler as soon
	// as the context cancels restores default SIGINT behaviour, so a
	// second interrupt kills us outright.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	go func() { <-ctx.Done(); stop() }()

	log.Printf("donor %q connecting to %s (algorithms: %v)", *name, *server, dist.RegisteredAlgorithms())
	if err := d.Run(ctx); err != nil {
		log.Fatalf("donor: %v", err)
	}
	fmt.Printf("donor %q processed %d units (%d aborted on cancel notices)\n", *name, d.Units(), d.Aborted())
}

func hostnameOr(def string) string {
	h, err := os.Hostname()
	if err != nil || h == "" {
		return def
	}
	return h
}
