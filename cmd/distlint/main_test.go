package main

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildDistlint compiles the driver once per test binary.
func buildDistlint(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "distlint")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building distlint: %v\n%s", err, out)
	}
	return bin
}

// TestRealTreeClean is the keystone regression: the committed tree must be
// distlint-green. Reverting any invariant fix (the rpc.ErrShutdown
// identity comparison, a missing //dist:locked annotation) fails here.
func TestRealTreeClean(t *testing.T) {
	bin := buildDistlint(t)
	cmd := exec.Command(bin, "-dir", "../..", "./...")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("distlint on the real tree: %v\n%s", err, out)
	}
	if len(strings.TrimSpace(string(out))) != 0 {
		t.Fatalf("distlint on the real tree printed findings:\n%s", out)
	}
}

// TestKnownBadFixtureFails pins the non-zero exit: pointed at a fixture
// package with seeded violations, the driver must report and exit 1.
func TestKnownBadFixtureFails(t *testing.T) {
	bin := buildDistlint(t)
	cmd := exec.Command(bin, "-dir", "../../internal/analysis/testdata/lockcheck", "./...")
	out, err := cmd.CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("want exit error, got %v\n%s", err, out)
	}
	if code := ee.ExitCode(); code != 1 {
		t.Fatalf("exit code %d, want 1\n%s", code, out)
	}
	if !strings.Contains(string(out), "distlint/lockcheck") {
		t.Fatalf("findings lack the lockcheck tag:\n%s", out)
	}
}
