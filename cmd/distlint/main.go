// Command distlint runs the repository's invariant analyzers — lockcheck,
// sentinelcheck, ctxcheck, epochcheck, gobcheck — over the packages named
// by its arguments (default ./...), printing one line per finding and
// exiting 1 if any survive //nolint filtering, 2 on load failure.
//
// Usage:
//
//	distlint [-dir directory] [packages]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/analysis/distlint"
)

func main() {
	dir := flag.String("dir", ".", "directory to resolve package patterns in")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: distlint [-dir directory] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	diags, err := distlint.Check(*dir, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "distlint: %v\n", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d.String())
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}
