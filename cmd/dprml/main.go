// Command dprml builds a maximum-likelihood phylogenetic tree by stepwise
// insertion on the local machine, parallelised over in-process workers —
// the single-box form of DPRml. For multi-machine runs use
// cmd/server -app dprml plus cmd/donor.
//
// Usage:
//
//	dprml -alignment aln.fasta [-model HKY85:kappa=2] [-gamma 4 -alpha 0.5] [-workers 8]
//
// Flags reproducing the paper's usage patterns:
//
//	-runs N      run N instances concurrently with rotated taxon addition
//	             orders (the stochastic multi-instance pattern of Fig. 2),
//	             report the best tree and the majority-rule consensus
//	-estimate    estimate kappa (and alpha if -gamma > 1) on a neighbor-
//	             joining starting tree before the ML build
//	-demo        simulate an alignment on a random tree and reconstruct it,
//	             reporting Robinson-Foulds distance to the truth
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strings"
	"sync"
	"time"

	"repro/internal/dist"
	"repro/internal/dprml"
	"repro/internal/likelihood"
	"repro/internal/phylo"
	"repro/internal/sched"
	"repro/internal/seq"
)

func main() {
	var (
		alnPath   = flag.String("alignment", "", "FASTA alignment of DNA sequences")
		model     = flag.String("model", "HKY85:kappa=2", "substitution model spec (JC69 | K80:kappa=K | F81 | F84:kappa=K | HKY85:kappa=K | TN93:... | GTR:...)")
		gamma     = flag.Int("gamma", 1, "discrete-gamma rate categories (1 = uniform rates)")
		alpha     = flag.Float64("alpha", 0.5, "gamma shape parameter")
		workers   = flag.Int("workers", runtime.GOMAXPROCS(0), "in-process workers")
		policy    = flag.String("policy", "adaptive:1s", "scheduling policy")
		order     = flag.String("order", "", "comma-separated taxon addition order (default: alignment order)")
		runs      = flag.Int("runs", 1, "concurrent instances with rotated addition orders")
		estimate  = flag.Bool("estimate", false, "estimate kappa (and alpha) on an NJ tree first")
		selModel  = flag.Bool("select", false, "choose the model family by AIC on an NJ tree first")
		criterion = flag.String("criterion", "aic", "model-selection criterion (aic | bic)")
		midpoint  = flag.Bool("midpoint", false, "midpoint-root the reported tree")
		ancestral = flag.Bool("ancestral", false, "reconstruct the marginal ancestral root sequence")
		bootstrap = flag.Int("bootstrap", 0, "run N bootstrap replicates concurrently and report consensus support")
		demo      = flag.Bool("demo", false, "simulate a 20-taxon alignment and reconstruct it")
		demoN     = flag.Int("demo-taxa", 20, "demo: number of taxa")
		demoL     = flag.Int("demo-sites", 500, "demo: alignment length")
		seed      = flag.Int64("seed", 1, "demo simulation seed")
	)
	flag.Parse()

	pol, err := sched.ByName(*policy)
	if err != nil {
		log.Fatal(err)
	}
	opts := dprml.Options{Model: *model, GammaCategories: *gamma, GammaAlpha: *alpha}
	if *order != "" {
		opts.AdditionOrder = strings.Split(*order, ",")
	}

	var aln *seq.Alignment
	var truth *phylo.Tree
	switch {
	case *demo:
		aln, truth = demoAlignment(*demoN, *demoL, *seed)
		fmt.Printf("simulated %d taxa x %d sites (HKY85, seed %d)\n", *demoN, *demoL, *seed)
	case *alnPath != "":
		f, err := os.Open(*alnPath)
		if err != nil {
			log.Fatal(err)
		}
		aln, err = seq.ReadAlignmentFASTA(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}

	if st, err := seq.ComputeSiteStats(aln); err == nil {
		fmt.Println(st.String())
	}

	if *selModel {
		opts.Model = selectModel(aln, *criterion)
	} else if *estimate {
		opts.Model = estimateModel(aln, *gamma, &opts)
	}

	if *bootstrap > 0 {
		start := time.Now()
		res, err := dprml.Bootstrap(context.Background(), aln, opts, *bootstrap, *workers, pol, *seed)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%d bootstrap replicates on %d workers in %s\n",
			*bootstrap, *workers, time.Since(start).Round(time.Millisecond))
		fmt.Printf("majority-rule consensus (branch lengths = bootstrap support):\n%s\n",
			res.Consensus.String())
		for s, frac := range res.Support {
			fmt.Printf("  %5.1f%%  %s\n", 100*frac, s)
		}
		return
	}

	start := time.Now()
	results := runInstances(aln, opts, *runs, *workers, pol)
	best := results[0]
	for _, r := range results[1:] {
		if r.LogL > best.LogL {
			best = r
		}
	}
	fmt.Printf("%d taxa, %d sites, model %s, %d run(s), %d workers, %s\n",
		aln.NTaxa(), aln.NSites(), opts.Model, *runs, *workers, time.Since(start).Round(time.Millisecond))
	for i, r := range results {
		fmt.Printf("  run %d: logL %.4f\n", i, r.LogL)
	}
	fmt.Printf("best tree:\n%s", best.String())

	if len(results) > 1 {
		var trees []*phylo.Tree
		for _, r := range results {
			tr, err := phylo.ParseNewick(r.Newick)
			if err != nil {
				log.Fatal(err)
			}
			trees = append(trees, tr)
		}
		cons, err := phylo.MajorityRuleConsensus(trees)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("majority-rule consensus of %d runs (branch lengths = split support):\n%s\n",
			len(results), cons.String())
		khCompare(aln, opts, results, best)
	}

	if *midpoint {
		tr, err := phylo.ParseNewick(best.Newick)
		if err != nil {
			log.Fatal(err)
		}
		rooted, err := tr.MidpointRoot()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("midpoint-rooted:\n%s\n", rooted.String())
	}

	if *ancestral {
		printAncestral(aln, best, opts)
	}

	if truth != nil {
		got, err := phylo.ParseNewick(best.Newick)
		if err != nil {
			log.Fatal(err)
		}
		d, err := phylo.RobinsonFoulds(got, truth)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("Robinson-Foulds distance to simulation truth: %d\n", d)
	}
}

// khCompare runs the Kishino-Hasegawa test between the best run and the
// runner-up (skipping runs with the identical topology).
func khCompare(aln *seq.Alignment, opts dprml.Options, results []*dprml.TreeResult, best *dprml.TreeResult) {
	bestTree, err := phylo.ParseNewick(best.Newick)
	if err != nil {
		return
	}
	var rival *dprml.TreeResult
	for _, r := range results {
		if r == best {
			continue
		}
		tr, err := phylo.ParseNewick(r.Newick)
		if err != nil || phylo.SameTopology(tr, bestTree) {
			continue
		}
		if rival == nil || r.LogL > rival.LogL {
			rival = r
		}
	}
	if rival == nil {
		fmt.Println("all runs found the same topology — no KH comparison needed")
		return
	}
	model, err := likelihood.ModelByName(opts.Model)
	if err != nil {
		return
	}
	rates := likelihood.UniformRates()
	if opts.GammaCategories > 1 {
		if rates, err = likelihood.DiscreteGamma(opts.GammaAlpha, opts.GammaCategories); err != nil {
			return
		}
	}
	ev, err := likelihood.NewEvaluator(model, rates, likelihood.Compress(aln))
	if err != nil {
		return
	}
	rivalTree, err := phylo.ParseNewick(rival.Newick)
	if err != nil {
		return
	}
	res, err := ev.KHTest(bestTree, rivalTree)
	if err != nil {
		return
	}
	verdict := "NOT significant — treat the topologies as tied"
	if res.PValue < 0.05 {
		verdict = "significant at 5%"
	}
	fmt.Printf("KH test, best vs runner-up topology: delta logL %.2f ± %.2f (p = %.3g, %s)\n",
		res.Delta, res.StdErr, res.PValue, verdict)
}

// printAncestral reconstructs and prints the marginal root sequence of the
// best tree.
func printAncestral(aln *seq.Alignment, best *dprml.TreeResult, opts dprml.Options) {
	tr, err := phylo.ParseNewick(best.Newick)
	if err != nil {
		log.Fatal(err)
	}
	model, err := likelihood.ModelByName(opts.Model)
	if err != nil {
		log.Fatal(err)
	}
	rates := likelihood.UniformRates()
	if opts.GammaCategories > 1 {
		rates, err = likelihood.DiscreteGamma(opts.GammaAlpha, opts.GammaCategories)
		if err != nil {
			log.Fatal(err)
		}
	}
	ev, err := likelihood.NewEvaluator(model, rates, likelihood.Compress(aln))
	if err != nil {
		log.Fatal(err)
	}
	res, err := ev.AncestralRoot(tr)
	if err != nil {
		log.Fatal(err)
	}
	lowConf := 0
	for _, p := range res.Posterior {
		if p < 0.9 {
			lowConf++
		}
	}
	fmt.Printf("ancestral root sequence (%d sites, %d with posterior < 0.9):\n", len(res.Sequence), lowConf)
	for at := 0; at < len(res.Sequence); at += 70 {
		end := at + 70
		if end > len(res.Sequence) {
			end = len(res.Sequence)
		}
		fmt.Printf("  %s\n", res.Sequence[at:end])
	}
}

// runInstances submits n DPRml problems (rotated addition orders) to one
// server and runs them concurrently on the worker pool — Figure 2's usage.
// Each instance's Watch stream drives a taxa-placed progress display (the
// v2 replacement for polling Status in a ticker loop).
func runInstances(aln *seq.Alignment, opts dprml.Options, n, workers int, pol sched.Policy) []*dprml.TreeResult {
	if n < 1 {
		n = 1
	}
	ctx := context.Background()
	srv := dist.NewServer(
		dist.WithPolicy(pol),
		dist.WithLeaseTTL(time.Hour),
		dist.WithExpiryScan(time.Hour),
		dist.WithWaitHint(time.Millisecond),
	)
	defer srv.Close()

	taxa := aln.Taxa()
	ids := make([]string, n)
	for i := 0; i < n; i++ {
		o := opts
		if n > 1 {
			rot := make([]string, len(taxa))
			for j := range taxa {
				rot[j] = taxa[(j+i*len(taxa)/n)%len(taxa)]
			}
			o.AdditionOrder = rot
		}
		p, err := dprml.NewProblem(fmt.Sprintf("dprml-%d", i), aln, o)
		if err != nil {
			log.Fatal(err)
		}
		if err := srv.Submit(ctx, p); err != nil {
			log.Fatal(err)
		}
		ids[i] = p.ID
		events, err := srv.Watch(ctx, p.ID)
		if err != nil {
			log.Fatal(err)
		}
		go watchStages(p.ID, events)
	}

	var wg sync.WaitGroup
	donors := make([]*dist.Donor, workers)
	for i := range donors {
		donors[i] = dist.NewDonor(srv, dist.WithName(fmt.Sprintf("w%d", i)))
		wg.Add(1)
		go func(d *dist.Donor) { defer wg.Done(); _ = d.Run(ctx) }(donors[i])
	}

	out := make([]*dprml.TreeResult, n)
	for i, id := range ids {
		raw, err := srv.Wait(ctx, id)
		if err != nil {
			log.Fatal(err)
		}
		out[i], err = dprml.DecodeResult(raw)
		if err != nil {
			log.Fatal(err)
		}
	}
	for _, d := range donors {
		d.Stop()
	}
	wg.Wait()
	return out
}

// watchStages prints a line whenever an instance places another taxon
// (AppDone advances). The event channel closes with the instance.
func watchStages(id string, events <-chan dist.Event) {
	placed := -1
	for ev := range events {
		if ev.Kind == dist.EventProgress && ev.AppDone > placed && ev.AppTotal > 0 {
			placed = ev.AppDone
			fmt.Printf("  %s: %d/%d taxa placed\n", id, placed, ev.AppTotal)
		}
	}
}

// selectModel ranks the model ladder by AIC/BIC on a neighbor-joining tree
// and returns the winner's spec.
func selectModel(aln *seq.Alignment, criterion string) string {
	nj, err := phylo.NeighborJoining(phylo.AlignmentDistances(aln))
	if err != nil {
		log.Fatal(err)
	}
	fits, err := likelihood.SelectModel(nj, aln, likelihood.SelectModelOptions{Criterion: criterion})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model selection on NJ tree (%s):\n", strings.ToUpper(criterion))
	for _, f := range fits {
		fmt.Printf("  %-6s logL %12.2f  K=%d  AIC %12.2f  BIC %12.2f\n",
			f.Name, f.LogL, f.K, f.AIC, f.BIC)
	}
	fmt.Printf("selected: %s\n", fits[0].Spec)
	return fits[0].Spec
}

// estimateModel fits kappa (and the gamma shape when gamma > 1) on a
// neighbor-joining starting tree and returns the updated model spec.
func estimateModel(aln *seq.Alignment, gamma int, opts *dprml.Options) string {
	nj, err := phylo.NeighborJoining(phylo.AlignmentDistances(aln))
	if err != nil {
		log.Fatal(err)
	}
	kappa, ll, err := likelihood.EstimateKappa(nj, aln, likelihood.EstimateKappaOptions{})
	if err != nil {
		log.Fatal(err)
	}
	pi := likelihood.EmpiricalFrequencies(aln)
	spec := fmt.Sprintf("HKY85:kappa=%.4f,piA=%.4f,piC=%.4f,piG=%.4f,piT=%.4f",
		kappa, pi[0], pi[1], pi[2], pi[3])
	fmt.Printf("estimated on NJ tree: kappa=%.3f (logL %.2f)\n", kappa, ll)
	if gamma > 1 {
		m, err := likelihood.ModelByName(spec)
		if err != nil {
			log.Fatal(err)
		}
		alphaHat, allL, err := likelihood.EstimateAlpha(nj, aln, m, gamma, 1e-3)
		if err != nil {
			log.Fatal(err)
		}
		opts.GammaAlpha = alphaHat
		fmt.Printf("estimated gamma shape: alpha=%.3f (logL %.2f)\n", alphaHat, allL)
	}
	return spec
}

func demoAlignment(nTaxa, nSites int, seed int64) (*seq.Alignment, *phylo.Tree) {
	taxa := make([]string, nTaxa)
	for i := range taxa {
		taxa[i] = fmt.Sprintf("taxon%02d", i)
	}
	tree, err := likelihood.RandomTree(taxa, 0.05, 0.3, seed)
	if err != nil {
		log.Fatal(err)
	}
	m, err := likelihood.NewHKY85(2, [4]float64{0.3, 0.2, 0.2, 0.3})
	if err != nil {
		log.Fatal(err)
	}
	aln, err := likelihood.Simulate(tree, m, likelihood.UniformRates(), nSites, seed+1)
	if err != nil {
		log.Fatal(err)
	}
	return aln, tree
}
