package repro

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// readmeCompileBlocks extracts every fenced ```go block that is
// immediately preceded (blank lines allowed) by a
// `<!-- readme-check: compile -->` marker. Unmarked blocks are
// illustrative sketches and stay unchecked.
func readmeCompileBlocks(t *testing.T, path string) []string {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(string(data), "\n")
	var blocks []string
	for i := 0; i < len(lines); i++ {
		if strings.TrimSpace(lines[i]) != "<!-- readme-check: compile -->" {
			continue
		}
		j := i + 1
		for j < len(lines) && strings.TrimSpace(lines[j]) == "" {
			j++
		}
		if j >= len(lines) || strings.TrimSpace(lines[j]) != "```go" {
			t.Fatalf("%s:%d: readme-check marker not followed by a ```go fence", path, i+1)
		}
		var b []string
		for j++; j < len(lines) && strings.TrimSpace(lines[j]) != "```"; j++ {
			b = append(b, lines[j])
		}
		blocks = append(blocks, strings.Join(b, "\n")+"\n")
		i = j
	}
	return blocks
}

// TestREADMECodeBlocksCompile compiles the README's marked code blocks
// verbatim against the real module, so the documented API cannot drift
// from the implemented one. Blocks import internal packages, which only
// code inside this module may do, so each block is written under
// testdata/ (invisible to `go build ./...`) and built as an explicit
// file argument.
func TestREADMECodeBlocksCompile(t *testing.T) {
	if testing.Short() {
		t.Skip("README compilation skipped in -short mode")
	}
	blocks := readmeCompileBlocks(t, "README.md")
	if len(blocks) == 0 {
		t.Fatal("no compile-checked code blocks found in README.md (marker lost?)")
	}
	if err := os.MkdirAll("testdata", 0o755); err != nil {
		t.Fatal(err)
	}
	for i, block := range blocks {
		src := block
		if !strings.HasPrefix(strings.TrimSpace(src), "package ") {
			src = "package main\n\n" + src
		}
		file := filepath.Join("testdata", fmt.Sprintf("readme_block_%d.go", i+1))
		if err := os.WriteFile(file, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { os.Remove(file) })
		cmd := exec.Command("go", "build", "-o", os.DevNull, file)
		cmd.Env = os.Environ()
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Errorf("README code block %d does not compile (docs drifted from the API): %v\n%s", i+1, err, out)
		}
	}
}

// TestExamplesRun builds and executes every example program, asserting it
// exits cleanly and prints its key result line — the examples are part of
// the public API surface and must not rot.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("example execution skipped in -short mode")
	}
	cases := []struct {
		pkg  string
		want []string // substrings the output must contain
	}{
		{"./examples/quickstart", []string{"pi ≈ 3.14"}},
		{"./examples/keysearch", []string{"recovered key 0x9a5b17"}},
		{"./examples/adaptive", []string{"adaptive(30s)", "policy"}},
		{"./examples/deployment", []string{"always-on lab", "diurnal lab"}},
		{"./examples/dsearch", []string{"recovered 4/4 planted homologs", "match the sequential reference"}},
		{"./examples/dprml", []string{"Robinson-Foulds distance to truth 0"}},
	}
	dir := t.TempDir()
	for _, c := range cases {
		c := c
		name := filepath.Base(c.pkg)
		t.Run(name, func(t *testing.T) {
			bin := filepath.Join(dir, name)
			build := exec.Command("go", "build", "-o", bin, c.pkg)
			build.Env = os.Environ()
			if out, err := build.CombinedOutput(); err != nil {
				t.Fatalf("build: %v\n%s", err, out)
			}
			cmd := exec.Command(bin)
			done := make(chan struct{})
			var out []byte
			var runErr error
			go func() {
				out, runErr = cmd.CombinedOutput()
				close(done)
			}()
			select {
			case <-done:
			case <-time.After(120 * time.Second):
				_ = cmd.Process.Kill()
				t.Fatalf("example did not finish in 120s")
			}
			if runErr != nil {
				t.Fatalf("run: %v\n%s", runErr, out)
			}
			for _, w := range c.want {
				if !strings.Contains(string(out), w) {
					t.Errorf("output missing %q:\n%s", w, out)
				}
			}
		})
	}
}
