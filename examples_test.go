package repro

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestExamplesRun builds and executes every example program, asserting it
// exits cleanly and prints its key result line — the examples are part of
// the public API surface and must not rot.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("example execution skipped in -short mode")
	}
	cases := []struct {
		pkg  string
		want []string // substrings the output must contain
	}{
		{"./examples/quickstart", []string{"pi ≈ 3.14"}},
		{"./examples/keysearch", []string{"recovered key 0x9a5b17"}},
		{"./examples/adaptive", []string{"adaptive(30s)", "policy"}},
		{"./examples/deployment", []string{"always-on lab", "diurnal lab"}},
		{"./examples/dsearch", []string{"recovered 4/4 planted homologs", "match the sequential reference"}},
		{"./examples/dprml", []string{"Robinson-Foulds distance to truth 0"}},
	}
	dir := t.TempDir()
	for _, c := range cases {
		c := c
		name := filepath.Base(c.pkg)
		t.Run(name, func(t *testing.T) {
			bin := filepath.Join(dir, name)
			build := exec.Command("go", "build", "-o", bin, c.pkg)
			build.Env = os.Environ()
			if out, err := build.CombinedOutput(); err != nil {
				t.Fatalf("build: %v\n%s", err, out)
			}
			cmd := exec.Command(bin)
			done := make(chan struct{})
			var out []byte
			var runErr error
			go func() {
				out, runErr = cmd.CombinedOutput()
				close(done)
			}()
			select {
			case <-done:
			case <-time.After(120 * time.Second):
				_ = cmd.Process.Kill()
				t.Fatalf("example did not finish in 120s")
			}
			if runErr != nil {
				t.Fatalf("run: %v\n%s", runErr, out)
			}
			for _, w := range c.want {
				if !strings.Contains(string(out), w) {
					t.Errorf("output missing %q:\n%s", w, out)
				}
			}
		})
	}
}
