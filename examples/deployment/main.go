// Deployment example: what the paper's 3-year background-service run looks
// like day to day. A laboratory of donor machines is simulated over a work
// week — owners claim their machines every morning (in-flight units are
// lost and reissued after the lease), the pool recovers every evening —
// and the same workload is compared against an always-on pool and a pool
// with permanent churn.
//
// Run:
//
//	go run ./examples/deployment
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/sched"
	"repro/internal/simnet"
)

func main() {
	const (
		nDonors   = 25
		days      = 5
		totalCost = 800_000 // ~9 donor-days of compute at speed 1
		seed      = 17
	)
	base := simnet.Config{
		Policy:         sched.Adaptive{Target: 30 * time.Second, Bootstrap: 1000, Min: 100},
		ServerOverhead: 3 * time.Millisecond,
		Lease:          5 * time.Minute,
		Seed:           seed,
	}

	type scenario struct {
		name   string
		donors []simnet.DonorSpec
	}
	scenarios := []scenario{
		{"always-on lab", simnet.Uniform(nDonors, 1.0, 0.05, 2*time.Millisecond, 100e6/8)},
		{"diurnal lab (owners 9-17h)", simnet.DiurnalLab(nDonors, days, 1.0, seed)},
	}
	// Permanent churn: a third of the machines power off for good mid-run.
	churned := simnet.Uniform(nDonors, 1.0, 0.05, 2*time.Millisecond, 100e6/8)
	for i := range churned {
		if i%3 == 0 {
			churned[i].LeaveAt = time.Duration(2+i) * time.Hour
		}
	}
	scenarios = append(scenarios, scenario{"churning lab (1/3 power off)", churned})

	fmt.Printf("%d donors, %d cost units (~%d donor-days), adaptive scheduling\n\n",
		nDonors, totalCost, totalCost/(86400))
	fmt.Printf("%-30s %12s %10s %10s %8s\n", "scenario", "makespan", "units", "lost", "effcy")
	for _, sc := range scenarios {
		cfg := base
		cfg.Donors = sc.donors
		m, err := simnet.Run(cfg, simnet.NewDivisibleWorkload(totalCost, 40, 4096))
		if err != nil {
			log.Fatalf("%s: %v", sc.name, err)
		}
		fmt.Printf("%-30s %12s %10d %10d %8.3f\n",
			sc.name, m.Makespan.Round(time.Minute), m.UnitsCompleted, m.UnitsLost, m.Efficiency)
	}

	fmt.Println(`
Every lost unit was recovered by the server's lease/reissue fault
tolerance — the property that let the paper's system run for 3 years on
~200 machines nobody administered for it. The diurnal pool pays roughly
the owners' duty cycle in makespan; efficiency is computed against
wall-clock donor-hours, so offline time counts against it.`)
}
