// Keysearch example: the cryptography workload class the paper reports
// running on the system ("bioinformatics, biomedical engineering, and
// cryptography applications"). A 3-byte key is recovered by exhaustive
// search over the keyspace: the typed DataManager partitions key ranges
// into dynamically sized units; donors hash candidate keys until one
// matches the target digest.
//
// This is an authorized toy exercise against a key generated in this very
// process — it demonstrates the divisible-workload pattern with early
// termination (once the key is found, remaining units are skipped, and the
// server's cancel notices abort any donor still scanning a doomed range).
//
// Run:
//
//	go run ./examples/keysearch
package main

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"log"
	"time"

	"repro/internal/core"
)

const keyspace = 1 << 24 // 3-byte key

// searchUnit scans keys in [From, To).
type searchUnit struct {
	From, To uint64
	Salt     []byte
	Target   []byte
}

// searchResult reports whether the unit found the key; it doubles as the
// problem's final result.
type searchResult struct {
	Found bool
	Key   uint64
}

// keyManager partitions the keyspace and stops issuing work once a unit
// reports success — an early-termination DataManager, a shape the
// bioinformatics applications don't need but cryptographic search does.
// It implements core.TypedDM[searchUnit, searchResult].
type keyManager struct {
	salt, target []byte

	next      uint64
	completed uint64
	seq       int64
	inflight  map[int64][2]uint64
	found     bool
	key       uint64
}

func newKeyManager(salt, target []byte) *keyManager {
	return &keyManager{salt: salt, target: target, inflight: make(map[int64][2]uint64)}
}

// NextUnit implements core.TypedDM; 1 cost unit = 1024 keys.
func (m *keyManager) NextUnit(budget int64) (*core.UnitOf[searchUnit], bool, error) {
	if m.found || m.next >= keyspace {
		return nil, false, nil
	}
	span := uint64(budget) * 1024
	if span < 1024 {
		span = 1024
	}
	if m.next+span > keyspace {
		span = keyspace - m.next
	}
	from, to := m.next, m.next+span
	m.next = to
	m.seq++
	m.inflight[m.seq] = [2]uint64{from, to}
	return &core.UnitOf[searchUnit]{
		ID:        m.seq,
		Algorithm: "crypto/keysearch",
		Payload:   searchUnit{From: from, To: to, Salt: m.salt, Target: m.target},
		Cost:      int64(span / 1024),
	}, true, nil
}

// Consume implements core.TypedDM.
func (m *keyManager) Consume(unitID int64, res searchResult) error {
	span, ok := m.inflight[unitID]
	if !ok {
		return fmt.Errorf("keysearch: result for unknown unit %d", unitID)
	}
	delete(m.inflight, unitID)
	m.completed += span[1] - span[0]
	if res.Found {
		m.found = true
		m.key = res.Key
	}
	return nil
}

// Done implements core.TypedDM: finished when the key is found, or the
// whole keyspace has been scanned without a match.
func (m *keyManager) Done() bool {
	return m.found || (m.completed >= keyspace && len(m.inflight) == 0)
}

// FinalResult implements core.TypedDM.
func (m *keyManager) FinalResult() (any, error) {
	return searchResult{Found: m.found, Key: m.key}, nil
}

// RemainingCost implements the optional CostReporter extension.
func (m *keyManager) RemainingCost() int64 {
	if m.found {
		return 0
	}
	return int64((keyspace - m.completed) / 1024)
}

// keySearcher is the donor-side half. It implements
// core.TypedAlgorithm[core.NoShared, searchUnit, searchResult]: each unit
// is self-contained, so there is no shared data.
type keySearcher struct{}

// Init implements core.TypedAlgorithm.
func (keySearcher) Init(core.NoShared) error { return nil }

// ProcessCtx implements core.TypedAlgorithm. The periodic context check
// makes the early-termination pattern sharp: when another donor finds the
// key and the problem finalises, the server's cancel notice aborts this
// scan instead of letting it hash out its whole doomed range.
func (keySearcher) ProcessCtx(ctx context.Context, u searchUnit) (searchResult, error) {
	var buf [8]byte
	for k := u.From; k < u.To; k++ {
		if k%16384 == 0 {
			if err := ctx.Err(); err != nil {
				return searchResult{}, err
			}
		}
		binary.BigEndian.PutUint64(buf[:], k)
		h := sha256.Sum256(append(buf[5:], u.Salt...)) // 3 key bytes + salt
		if bytes.Equal(h[:], u.Target) {
			return searchResult{Found: true, Key: k}, nil
		}
	}
	return searchResult{Found: false}, nil
}

func main() {
	core.RegisterTypedAlgorithm("crypto/keysearch", func() core.TypedAlgorithm[core.NoShared, searchUnit, searchResult] {
		return keySearcher{}
	})

	// Generate the secret this run will recover.
	const secret uint64 = 0x9a5b17
	salt := []byte("ipdps05")
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], secret)
	target := sha256.Sum256(append(buf[5:], salt...))

	problem, err := core.NewTypedProblem[searchUnit, searchResult]("keysearch", newKeyManager(salt, target[:]), core.NoShared{})
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	out, err := core.RunLocal(context.Background(), problem, 8, core.Adaptive(100*time.Millisecond))
	if err != nil {
		log.Fatal(err)
	}
	res, err := core.Decode[searchResult](out)
	if err != nil {
		log.Fatal(err)
	}
	if !res.Found {
		log.Fatalf("keyspace exhausted without a match (bug)")
	}
	fmt.Printf("recovered key %#06x in %s (expected %#06x)\n",
		res.Key, time.Since(start).Round(time.Millisecond), secret)
	if res.Key != secret {
		log.Fatal("recovered the wrong key")
	}
}
