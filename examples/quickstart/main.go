// Quickstart: implement the system's two extension points — a DataManager
// (server side) and an Algorithm (client side) — for a trivially
// parallelisable problem, and run it on in-process workers.
//
// The problem here is Monte-Carlo estimation of pi: the DataManager
// partitions a total sample count into work units, donors count the darts
// that land inside the unit circle, and the DataManager folds the counts
// back together. This mirrors the paper's §2.1: "The user is required to
// extend two classes to create a Problem to run on the system."
//
// Run:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro/internal/core"
)

// piUnit is one work unit's payload: how many darts to throw, and the seed
// that makes the run reproducible.
type piUnit struct {
	Samples int64
	Seed    int64
}

// piResult is a unit's output.
type piResult struct {
	Inside int64
}

// piManager is the server-side half: it partitions TotalSamples into units
// whose size follows the scheduler's per-donor budget, and accumulates the
// inside-circle counts.
type piManager struct {
	TotalSamples int64

	dispatched int64
	completed  int64
	inside     int64
	seq        int64
	inflight   map[int64]int64 // unitID -> samples
}

func newPiManager(total int64) *piManager {
	return &piManager{TotalSamples: total, inflight: make(map[int64]int64)}
}

// NextUnit implements core.DataManager. The budget is in cost units; we
// declare 1 cost unit = 1000 samples so the adaptive policy's throughput
// accounting has reasonable magnitudes.
func (m *piManager) NextUnit(budget int64) (*core.Unit, bool, error) {
	left := m.TotalSamples - m.dispatched
	if left <= 0 {
		return nil, false, nil
	}
	samples := budget * 1000
	if samples < 1000 {
		samples = 1000
	}
	if samples > left {
		samples = left
	}
	m.seq++
	payload, err := core.Marshal(piUnit{Samples: samples, Seed: m.seq})
	if err != nil {
		return nil, false, err
	}
	m.dispatched += samples
	m.inflight[m.seq] = samples
	return &core.Unit{
		ID:        m.seq,
		Algorithm: "quickstart/pi",
		Payload:   payload,
		Cost:      samples / 1000,
	}, true, nil
}

// Consume implements core.DataManager.
func (m *piManager) Consume(unitID int64, payload []byte) error {
	samples, ok := m.inflight[unitID]
	if !ok {
		return fmt.Errorf("pi: result for unknown unit %d", unitID)
	}
	delete(m.inflight, unitID)
	var res piResult
	if err := core.Unmarshal(payload, &res); err != nil {
		return err
	}
	m.inside += res.Inside
	m.completed += samples
	return nil
}

// Done implements core.DataManager.
func (m *piManager) Done() bool { return m.completed >= m.TotalSamples }

// FinalResult implements core.DataManager.
func (m *piManager) FinalResult() ([]byte, error) {
	return core.Marshal(4 * float64(m.inside) / float64(m.completed))
}

// RemainingCost lets remaining-aware policies (GSS, factoring) size units.
func (m *piManager) RemainingCost() int64 { return (m.TotalSamples - m.completed) / 1000 }

// piAlgorithm is the client-side half: throw darts.
type piAlgorithm struct{}

// Init implements core.Algorithm (this problem has no shared data).
func (piAlgorithm) Init(shared []byte) error { return nil }

// Process implements core.Algorithm.
func (piAlgorithm) Process(payload []byte) ([]byte, error) {
	var u piUnit
	if err := core.Unmarshal(payload, &u); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(u.Seed))
	var inside int64
	for i := int64(0); i < u.Samples; i++ {
		x, y := rng.Float64(), rng.Float64()
		if x*x+y*y <= 1 {
			inside++
		}
	}
	return core.Marshal(piResult{Inside: inside})
}

func main() {
	// Donor binaries know algorithms by name (the Go substitute for Java's
	// runtime class shipping — see DESIGN.md).
	core.RegisterAlgorithm("quickstart/pi", func() core.Algorithm { return piAlgorithm{} })

	const totalSamples = 50_000_000
	problem := &core.Problem{ID: "pi", DM: newPiManager(totalSamples)}

	start := time.Now()
	out, err := core.RunLocal(problem, 8, core.Adaptive(100*time.Millisecond))
	if err != nil {
		log.Fatal(err)
	}
	var pi float64
	if err := core.Unmarshal(out, &pi); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pi ≈ %.6f  (%d samples, 8 workers, %s)\n",
		pi, int64(totalSamples), time.Since(start).Round(time.Millisecond))
}
