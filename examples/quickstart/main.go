// Quickstart: implement the system's two extension points — a typed
// DataManager (server side) and a typed Algorithm (client side) — for a
// trivially parallelisable problem, and run it on in-process workers.
//
// The problem here is Monte-Carlo estimation of pi: the DataManager
// partitions a total sample count into work units, donors count the darts
// that land inside the unit circle, and the DataManager folds the counts
// back together. This mirrors the paper's §2.1: "The user is required to
// extend two classes to create a Problem to run on the system." — with the
// v2 twist that the payloads are typed structs and the gob codec lives in
// the core adapters, not in application code.
//
// Run:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro/internal/core"
)

// piUnit is one work unit's payload: how many darts to throw, and the seed
// that makes the run reproducible.
type piUnit struct {
	Samples int64
	Seed    int64
}

// piResult is a unit's output.
type piResult struct {
	Inside int64
}

// piManager is the server-side half: it partitions TotalSamples into units
// whose size follows the scheduler's per-donor budget, and accumulates the
// inside-circle counts. It implements core.TypedDM[piUnit, piResult].
type piManager struct {
	TotalSamples int64

	dispatched int64
	completed  int64
	inside     int64
	seq        int64
	inflight   map[int64]int64 // unitID -> samples
}

func newPiManager(total int64) *piManager {
	return &piManager{TotalSamples: total, inflight: make(map[int64]int64)}
}

// NextUnit implements core.TypedDM. The budget is in cost units; we
// declare 1 cost unit = 1000 samples so the adaptive policy's throughput
// accounting has reasonable magnitudes.
func (m *piManager) NextUnit(budget int64) (*core.UnitOf[piUnit], bool, error) {
	left := m.TotalSamples - m.dispatched
	if left <= 0 {
		return nil, false, nil
	}
	samples := budget * 1000
	if samples < 1000 {
		samples = 1000
	}
	if samples > left {
		samples = left
	}
	m.seq++
	m.dispatched += samples
	m.inflight[m.seq] = samples
	return &core.UnitOf[piUnit]{
		ID:        m.seq,
		Algorithm: "quickstart/pi",
		Payload:   piUnit{Samples: samples, Seed: m.seq},
		Cost:      samples / 1000,
	}, true, nil
}

// Consume implements core.TypedDM.
func (m *piManager) Consume(unitID int64, res piResult) error {
	samples, ok := m.inflight[unitID]
	if !ok {
		return fmt.Errorf("pi: result for unknown unit %d", unitID)
	}
	delete(m.inflight, unitID)
	m.inside += res.Inside
	m.completed += samples
	return nil
}

// Done implements core.TypedDM.
func (m *piManager) Done() bool { return m.completed >= m.TotalSamples }

// FinalResult implements core.TypedDM.
func (m *piManager) FinalResult() (any, error) {
	return 4 * float64(m.inside) / float64(m.completed), nil
}

// RemainingCost lets remaining-aware policies (GSS, factoring) size units.
func (m *piManager) RemainingCost() int64 { return (m.TotalSamples - m.completed) / 1000 }

// piAlgorithm is the client-side half: throw darts. It implements
// core.TypedAlgorithm[core.NoShared, piUnit, piResult] — this problem has
// no shared data.
type piAlgorithm struct{}

// Init implements core.TypedAlgorithm.
func (piAlgorithm) Init(core.NoShared) error { return nil }

// ProcessCtx implements core.TypedAlgorithm; the context check between
// dart batches lets a cancelled run stop the workers mid-unit.
func (piAlgorithm) ProcessCtx(ctx context.Context, u piUnit) (piResult, error) {
	rng := rand.New(rand.NewSource(u.Seed))
	var inside int64
	for i := int64(0); i < u.Samples; i++ {
		if i%100_000 == 0 {
			if err := ctx.Err(); err != nil {
				return piResult{}, err
			}
		}
		x, y := rng.Float64(), rng.Float64()
		if x*x+y*y <= 1 {
			inside++
		}
	}
	return piResult{Inside: inside}, nil
}

func main() {
	// Donor binaries know algorithms by name (the Go substitute for Java's
	// runtime class shipping — see docs/ARCHITECTURE.md).
	core.RegisterTypedAlgorithm("quickstart/pi", func() core.TypedAlgorithm[core.NoShared, piUnit, piResult] {
		return piAlgorithm{}
	})

	const totalSamples = 50_000_000
	problem, err := core.NewTypedProblem[piUnit, piResult]("pi", newPiManager(totalSamples), core.NoShared{})
	if err != nil {
		log.Fatal(err)
	}

	start := time.Now()
	out, err := core.RunLocal(context.Background(), problem, 8, core.Adaptive(100*time.Millisecond))
	if err != nil {
		log.Fatal(err)
	}
	pi, err := core.Decode[float64](out)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pi ≈ %.6f  (%d samples, 8 workers, %s)\n",
		pi, int64(totalSamples), time.Since(start).Round(time.Millisecond))
}
