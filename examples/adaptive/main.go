// Adaptive-scheduling example: why the paper's server sizes work units to
// each donor's measured throughput. A heterogeneous donor pool (Pentium II
// desktops through cluster nodes, as in the paper's deployment) processes
// the same DSEARCH-shaped workload under four scheduling policies on the
// discrete-event simulator, and the makespans are compared.
//
// Run:
//
//	go run ./examples/adaptive
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"repro/internal/sched"
	"repro/internal/simnet"
)

func main() {
	const (
		donors    = 40
		totalCost = 200_000 // ~1.4 donor-days at speed 1
		seed      = 11
	)
	policies := []sched.Policy{
		sched.Adaptive{Target: 30 * time.Second, Bootstrap: 1000, Min: 100},
		sched.Fixed{Size: 500},   // too small: dispatch overhead dominates
		sched.Fixed{Size: 20000}, // too large: stragglers at the tail
		sched.GSS{K: 1, Min: 100},
		sched.Factoring{Min: 100},
	}

	type row struct {
		name     string
		makespan time.Duration
		eff      float64
		units    int64
	}
	var rows []row
	for _, p := range policies {
		cfg := simnet.Config{
			Donors:         simnet.HeterogeneousLab(donors, seed),
			Policy:         p,
			ServerOverhead: 3 * time.Millisecond,
			Lease:          5 * time.Minute,
			Seed:           seed,
		}
		m, err := simnet.Run(cfg, simnet.NewDivisibleWorkload(totalCost, 40, 4096))
		if err != nil {
			log.Fatal(err)
		}
		rows = append(rows, row{p.Name(), m.Makespan, m.Efficiency, m.UnitsDispatched})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].makespan < rows[j].makespan })

	fmt.Printf("%d heterogeneous donors (P-II desktops ... cluster nodes), total cost %d\n\n", donors, totalCost)
	fmt.Printf("%-16s %14s %12s %8s\n", "policy", "makespan", "efficiency", "units")
	best := rows[0].makespan.Seconds()
	for _, r := range rows {
		fmt.Printf("%-16s %14s %11.3f %8d   (%.2fx best)\n",
			r.name, r.makespan.Round(time.Second), r.eff, r.units, r.makespan.Seconds()/best)
	}
	fmt.Println("\nThe adaptive policy hands slow Pentium IIs small units and fast")
	fmt.Println("cluster nodes large ones, so all donors finish together and neither")
	fmt.Println("dispatch overhead (tiny fixed units) nor the straggler tail (huge")
	fmt.Println("fixed units) dominates — the paper's §3.1 'dynamically sized units'.")
}
