// DPRml example: distributed phylogeny reconstruction by maximum
// likelihood. An alignment is simulated on a known random tree, then
// reconstructed by distributed stepwise insertion — including the paper's
// headline usage pattern of running several independent instances
// concurrently on one server so donors stay busy across stage barriers
// (Figure 2's "6 problems simultaneously").
//
// Run:
//
//	go run ./examples/dprml
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"repro/internal/dist"
	"repro/internal/dprml"
	"repro/internal/likelihood"
	"repro/internal/phylo"
	"repro/internal/sched"
)

func main() {
	// Simulate a 12-taxon, 600-site DNA alignment under HKY85 on a random
	// tree — the "truth" the reconstruction should recover.
	taxa := make([]string, 12)
	for i := range taxa {
		taxa[i] = fmt.Sprintf("taxon%02d", i)
	}
	truth, err := likelihood.RandomTree(taxa, 0.05, 0.30, 7)
	if err != nil {
		log.Fatal(err)
	}
	model, err := likelihood.NewHKY85(2, [4]float64{0.3, 0.2, 0.2, 0.3})
	if err != nil {
		log.Fatal(err)
	}
	aln, err := likelihood.Simulate(truth, model, likelihood.UniformRates(), 600, 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated %d taxa x %d sites under HKY85\n", aln.NTaxa(), aln.NSites())

	opts := dprml.Options{Model: "HKY85:kappa=2", LocalRounds: 1, FinalRounds: 2}

	// The paper's usage pattern: biologists run the stochastic search
	// several times with different (randomised) taxon addition orders and
	// keep the best tree. Submit three instances to one server; its
	// round-robin dispatch keeps workers busy across each instance's stage
	// barriers.
	orders := [][]string{
		nil, // alignment order
		rotate(aln.Taxa(), 4),
		reverse(aln.Taxa()),
	}
	ctx := context.Background()
	srv := dist.NewServer(
		dist.WithPolicy(sched.Adaptive{Target: 200 * time.Millisecond, Bootstrap: 5000, Min: 1}),
		dist.WithLeaseTTL(time.Hour),
		dist.WithExpiryScan(time.Hour),
		dist.WithWaitHint(time.Millisecond),
		// Each instance's state is evicted as soon as its Wait below
		// delivers the result — the lifecycle a long-lived multi-problem
		// server uses to stay bounded.
		dist.WithAutoForget(true),
	)
	defer srv.Close()

	ids := make([]string, len(orders))
	for i, ord := range orders {
		o := opts
		o.AdditionOrder = ord
		p, err := dprml.NewProblem(fmt.Sprintf("dprml-%d", i), aln, o)
		if err != nil {
			log.Fatal(err)
		}
		if err := srv.Submit(ctx, p); err != nil {
			log.Fatal(err)
		}
		ids[i] = p.ID
	}

	const workers = 6
	var wg sync.WaitGroup
	donors := make([]*dist.Donor, workers)
	for i := range donors {
		donors[i] = dist.NewDonor(srv, dist.WithName(fmt.Sprintf("w%d", i)))
		wg.Add(1)
		go func(d *dist.Donor) { defer wg.Done(); _ = d.Run(ctx) }(donors[i])
	}

	start := time.Now()
	best := (*dprml.TreeResult)(nil)
	for _, id := range ids {
		out, err := srv.Wait(ctx, id)
		if err != nil {
			log.Fatal(err)
		}
		res, err := dprml.DecodeResult(out)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s: logL %.2f\n", id, res.LogL)
		if best == nil || res.LogL > best.LogL {
			best = res
		}
	}
	for _, d := range donors {
		d.Stop()
	}
	wg.Wait()
	fmt.Printf("3 instances on %d workers in %s\n", workers, time.Since(start).Round(time.Millisecond))

	got, err := phylo.ParseNewick(best.Newick)
	if err != nil {
		log.Fatal(err)
	}
	rf, err := phylo.RobinsonFoulds(got, truth)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("best tree: logL %.2f, Robinson-Foulds distance to truth %d\n%s\n", best.LogL, rf, best.Newick)
}

func rotate(xs []string, k int) []string {
	out := make([]string, len(xs))
	for i := range xs {
		out[i] = xs[(i+k)%len(xs)]
	}
	return out
}

func reverse(xs []string) []string {
	out := make([]string, len(xs))
	for i := range xs {
		out[len(xs)-1-i] = xs[i]
	}
	return out
}
