// DSEARCH example: sensitive database search over a synthetic protein
// database with planted homolog families, run on the distributed system
// with in-process workers, and validated two ways — against the sequential
// reference implementation, and by checking that the rigorous
// Smith-Waterman search recovers the planted family members.
//
// Run:
//
//	go run ./examples/dsearch
package main

import (
	"context"
	"fmt"
	"log"
	"runtime"
	"time"

	"repro/internal/dist"
	"repro/internal/dsearch"
	"repro/internal/sched"
	"repro/internal/seq"
)

func main() {
	// A reproducible synthetic workload: 400 background proteins plus 5
	// planted families of 4 homologs each; one mutated member of each
	// family becomes a query.
	gen := seq.NewGenerator(seq.Protein, 42)
	w := gen.NewSearchWorkload(400, 5, 4, seq.LengthModel{Mean: 220, StdDev: 60, Min: 80, Max: 400})
	fmt.Printf("database: %d sequences, %d residues; %d queries\n",
		w.DB.Len(), w.DB.TotalResidues(), w.Queries.Len())

	cfg := dsearch.DefaultConfig()
	cfg.TopK = 10

	// Distributed search: the DataManager splits the database into
	// dynamically sized chunks, workers align and return top-hit lists,
	// the server merges them.
	problem, err := dsearch.NewProblem("example", w.DB, w.Queries, cfg)
	if err != nil {
		log.Fatal(err)
	}
	workers := runtime.GOMAXPROCS(0)
	start := time.Now()
	out, err := dist.RunLocal(context.Background(), problem, workers, sched.Adaptive{Target: 200 * time.Millisecond, Bootstrap: 5000, Min: 500})
	if err != nil {
		log.Fatal(err)
	}
	distElapsed := time.Since(start)
	hits, err := dsearch.DecodeResult(out, cfg.TopK)
	if err != nil {
		log.Fatal(err)
	}

	// Sequential reference for validation.
	start = time.Now()
	ref, err := dsearch.SearchLocal(w.DB, w.Queries, cfg)
	if err != nil {
		log.Fatal(err)
	}
	seqElapsed := time.Since(start)

	fmt.Printf("distributed (%d workers): %s   sequential: %s\n",
		workers, distElapsed.Round(time.Millisecond), seqElapsed.Round(time.Millisecond))

	// Validation 1: the distributed merge must reproduce the sequential
	// top hit for every query.
	for _, q := range w.Queries.Seqs {
		d, s := hits.Query(q.ID), ref.Query(q.ID)
		if len(d) == 0 || len(s) == 0 || d[0] != s[0] {
			log.Fatalf("mismatch for %s: distributed %+v vs sequential %+v", q.ID, first(d), first(s))
		}
	}
	fmt.Println("distributed top hits match the sequential reference for every query")

	// Validation 2: sensitivity — every planted homolog should appear in
	// its query's top-K list.
	for q, members := range w.Planted {
		got := make(map[string]bool)
		for _, h := range hits.Query(q) {
			got[h.Subject] = true
		}
		found := 0
		for _, m := range members {
			if got[m] {
				found++
			}
		}
		fmt.Printf("  %s: recovered %d/%d planted homologs\n", q, found, len(members))
	}

	// Show one query's report.
	q0 := w.Queries.Seqs[0].ID
	fmt.Printf("\ntop hits for %s:\n", q0)
	for i, h := range hits.Query(q0) {
		if i == 5 {
			break
		}
		fmt.Printf("  %-12s score %5d  (len %d)\n", h.Subject, h.Score, h.SubjectLen)
	}
}

func first(hs []dsearch.Hit) any {
	if len(hs) == 0 {
		return "(none)"
	}
	return hs[0]
}
