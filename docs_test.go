package repro

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"unicode"
)

// The docs lint: every relative link in every tracked markdown file must
// resolve to a real file or directory, and every #anchor — own-file or
// cross-file — must match a heading in its target. External (http, https,
// mailto) links are out of scope; links inside fenced code blocks are
// ignored. `make docs-lint` runs exactly this test.

// mdFiles lists the repository's markdown files, skipping VCS and vendor
// droppings.
func mdFiles(t *testing.T) []string {
	t.Helper()
	var files []string
	err := filepath.WalkDir(".", func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			switch d.Name() {
			case ".git", ".claude", "node_modules":
				return filepath.SkipDir
			}
			return nil
		}
		if strings.EqualFold(filepath.Ext(path), ".md") {
			files = append(files, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no markdown files found")
	}
	return files
}

// headingSlug reproduces GitHub's anchor slug for a heading: lowercase,
// punctuation stripped, spaces to hyphens (hyphens and underscores kept).
func headingSlug(heading string) string {
	heading = strings.TrimSpace(heading)
	var b strings.Builder
	for _, r := range strings.ToLower(heading) {
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r) || r == '-' || r == '_':
			b.WriteRune(r)
		case r == ' ':
			b.WriteByte('-')
		}
	}
	return b.String()
}

// mdOutsideFences returns the file's lines with fenced code blocks
// blanked, so neither links nor #-prefixed code comments inside fences
// are misread as markdown.
func mdOutsideFences(t *testing.T, path string) []string {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(string(data), "\n")
	inFence := false
	out := make([]string, len(lines))
	for i, line := range lines {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if !inFence {
			out[i] = line
		}
	}
	return out
}

// mdAnchors collects the slugs of a markdown file's headings.
func mdAnchors(t *testing.T, path string) map[string]bool {
	t.Helper()
	anchors := make(map[string]bool)
	for _, line := range mdOutsideFences(t, path) {
		trimmed := strings.TrimSpace(line)
		level := 0
		for level < len(trimmed) && trimmed[level] == '#' {
			level++
		}
		if level == 0 || level > 6 || level == len(trimmed) || trimmed[level] != ' ' {
			continue
		}
		anchors[headingSlug(trimmed[level+1:])] = true
	}
	return anchors
}

// mdLinkRE matches inline links, with or without a quoted title:
// [text](target) and [text](target "title"). The capture is the target.
var mdLinkRE = regexp.MustCompile(`\[[^\]]*\]\(\s*([^)\s]+)(?:\s+"[^"]*")?\s*\)`)

// mdRefLinkRE detects reference-style links ([text][ref]), which this
// lint does not resolve; they fail loudly instead of passing unchecked.
var mdRefLinkRE = regexp.MustCompile(`\[[^\]]*\]\[[^\]]*\]`)

func TestMarkdownDocs(t *testing.T) {
	for _, file := range mdFiles(t) {
		file := file
		t.Run(filepath.ToSlash(file), func(t *testing.T) {
			ownAnchors := mdAnchors(t, file)
			for lineNo, line := range mdOutsideFences(t, file) {
				if m := mdRefLinkRE.FindString(line); m != "" {
					t.Errorf("%s:%d: reference-style link %q is not supported by the docs lint; use an inline link", file, lineNo+1, m)
				}
				for _, m := range mdLinkRE.FindAllStringSubmatch(line, -1) {
					target := m[1]
					if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
						continue
					}
					path, anchor, _ := strings.Cut(target, "#")
					if path == "" {
						// Own-file anchor.
						if !ownAnchors[anchor] {
							t.Errorf("%s:%d: anchor #%s matches no heading", file, lineNo+1, anchor)
						}
						continue
					}
					resolved := filepath.Join(filepath.Dir(file), filepath.FromSlash(path))
					info, err := os.Stat(resolved)
					if err != nil {
						t.Errorf("%s:%d: link target %q does not exist", file, lineNo+1, target)
						continue
					}
					if anchor == "" {
						continue
					}
					if info.IsDir() || !strings.EqualFold(filepath.Ext(resolved), ".md") {
						t.Errorf("%s:%d: anchor on non-markdown target %q", file, lineNo+1, target)
						continue
					}
					if !mdAnchors(t, resolved)[anchor] {
						t.Errorf("%s:%d: anchor #%s matches no heading in %s", file, lineNo+1, anchor, path)
					}
				}
			}
		})
	}
}
