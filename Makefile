GO ?= go

.PHONY: check build vet fmt lint test race fuzz-smoke bench demo docs-lint swarm

# check is the tier-1 gate: everything CI runs (CI invokes this target).
# vet covers every package, including the control-channel codec paths in
# internal/dist and internal/wire; lint runs the distlint invariant
# analyzers (lock/sentinel/context/epoch/codec rules — see
# docs/ARCHITECTURE.md "Checked invariants"). The docs lint (markdown
# links/anchors + README block compilation) is gated through `test`, which
# runs the root package's TestMarkdownDocs and TestREADMECodeBlocksCompile;
# docs-lint below re-runs just those for fast iteration on documentation.
check: build vet fmt lint test race fuzz-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

# lint enforces the repository's machine-checked invariants; exit 1 on any
# finding, 2 if a package fails to load.
lint:
	$(GO) run ./cmd/distlint ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# fuzz-smoke gives each wire-protocol and journal-recovery fuzzer a few
# seconds of coverage growth on every check; longer runs are a manual
# `go test -fuzz` away.
fuzz-smoke:
	$(GO) test ./internal/wire/ -run '^$$' -fuzz FuzzFrameDecode -fuzztime 5s
	$(GO) test ./internal/wire/ -run '^$$' -fuzz FuzzHandshake -fuzztime 5s
	$(GO) test ./internal/wire/ -run '^$$' -fuzz FuzzFlatCodec -fuzztime 5s
	$(GO) test ./internal/journal/ -run '^$$' -fuzz FuzzJournalReplay -fuzztime 5s

# bench covers every package carrying benchmarks (the root harness plus
# internal packages like align), so a bench added in a new file or package
# is picked up without editing this target again.
bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' ./...

# swarm runs the full-scale donor-swarm soak under the race detector: 1024
# shaped donors, 8 problems across three priority tiers, 10% abrupt churn,
# speculation on — asserting zero double-folds, completed <= dispatched and
# empty lease tables at exit. The 256-donor smoke rides the normal test and
# race targets (so `make check` covers the swarm path); this is the long
# one, kept opt-in behind SWARM_SOAK.
swarm:
	SWARM_SOAK=1 $(GO) test -race -run TestSwarmSoak1024 -v ./internal/swarm/

# docs-lint checks every markdown file's relative links and anchors, and
# compiles the README's marked code blocks against the real API.
docs-lint:
	$(GO) test -run 'TestMarkdownDocs|TestREADMECodeBlocksCompile' -count=1 .

demo:
	$(GO) run ./cmd/dsearch -demo
