GO ?= go

.PHONY: check build vet test race bench demo

# check is the tier-1 gate: everything CI runs (CI invokes this target).
check: build vet test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/dist/ ./internal/core/

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

demo:
	$(GO) run ./cmd/dsearch -demo
