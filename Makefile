GO ?= go

.PHONY: check build vet fmt test race bench demo docs-lint

# check is the tier-1 gate: everything CI runs (CI invokes this target).
# vet covers every package, including the control-channel codec paths in
# internal/dist and internal/wire. The docs lint (markdown links/anchors +
# README block compilation) is gated through `test`, which runs the root
# package's TestMarkdownDocs and TestREADMECodeBlocksCompile; docs-lint
# below re-runs just those for fast iteration on documentation.
check: build vet fmt test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/dist/ ./internal/core/

# bench covers every package carrying benchmarks (the root harness plus
# internal packages like align), so a bench added in a new file or package
# is picked up without editing this target again.
bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' ./...

# docs-lint checks every markdown file's relative links and anchors, and
# compiles the README's marked code blocks against the real API.
docs-lint:
	$(GO) test -run 'TestMarkdownDocs|TestREADMECodeBlocksCompile' -count=1 .

demo:
	$(GO) run ./cmd/dsearch -demo
