GO ?= go

.PHONY: check build vet fmt test race bench demo

# check is the tier-1 gate: everything CI runs (CI invokes this target).
check: build vet fmt test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/dist/ ./internal/core/

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

demo:
	$(GO) run ./cmd/dsearch -demo
