// Root benchmark harness: one bench per evaluation artifact of the paper.
//
//	BenchmarkFigure1               DSEARCH speedup curve (83 homogeneous donors)
//	BenchmarkFigure2               DPRml speedup curve (50 taxa, 6 instances)
//	BenchmarkFigure2SingleInstance the single-instance ablation (paper §3.2 prose)
//	BenchmarkAdaptiveVsFixed       scheduling-policy ablation (paper §3.1 prose)
//	BenchmarkChurn                 fault tolerance under donor churn (§2 design)
//	BenchmarkBulkTransfer          RPC vs raw-socket bulk data (§2.2 design)
//	BenchmarkDSEARCHEndToEnd       real distributed search, in-process workers
//	BenchmarkDPRmlEndToEnd         real distributed tree build, in-process workers
//	BenchmarkCoordinatorSharding   RequestTask/SubmitResult throughput vs problem count
//	BenchmarkDispatchLatencyPushVsPoll  idle-donor wakeup latency and idle control
//	                               QPS, WaitTask long-poll vs jittered polling
//	BenchmarkSharedBlobDedup       bulk bytes stored/fetched for 16 problems sharing
//	                               one alignment, content-addressed vs per-problem keys
//	BenchmarkCodecBatchAblation    tiny-unit drain throughput over a real loopback
//	                               deployment, gob vs flat codec × single vs batched
//	                               WaitTask dispatch
//	BenchmarkSwarmMakespan         1024-donor swarm drain on a straggler-heavy
//	                               fleet, Fixed vs Adaptive vs Adaptive+speculation
//
// Speedup/efficiency numbers are attached to the bench output via
// b.ReportMetric; run with -v to also print the full series as tables (the
// text analogue of the paper's figures — same output as cmd/speedup).
package repro

import (
	"context"
	"encoding/binary"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"

	"testing"
	"time"

	"net"
	"net/rpc"

	"repro/internal/dist"
	"repro/internal/dprml"
	"repro/internal/dsearch"
	"repro/internal/figures"
	"repro/internal/likelihood"
	"repro/internal/sched"
	"repro/internal/seq"
	"repro/internal/simnet"
	"repro/internal/swarm"
	"repro/internal/wire"
)

func reportCurve(b *testing.B, title string, pts []simnet.SpeedupPoint) {
	b.Helper()
	last := pts[len(pts)-1]
	b.ReportMetric(last.Speedup, "speedup@max")
	b.ReportMetric(last.Efficiency, "efficiency@max")
	if testing.Verbose() {
		figures.WriteTable(os.Stdout, title, pts)
	}
}

// BenchmarkFigure1 regenerates the DSEARCH speedup series of Figure 1.
func BenchmarkFigure1(b *testing.B) {
	cfg := figures.DefaultFigure1()
	var pts []simnet.SpeedupPoint
	var err error
	for i := 0; i < b.N; i++ {
		pts, err = figures.Figure1(cfg, nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportCurve(b, "Figure 1: DSEARCH speedup", pts)
}

// BenchmarkFigure2 regenerates the DPRml 6-instance speedup series of
// Figure 2.
func BenchmarkFigure2(b *testing.B) {
	cfg := figures.DefaultFigure2()
	var pts []simnet.SpeedupPoint
	var err error
	for i := 0; i < b.N; i++ {
		pts, err = figures.Figure2(cfg, nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportCurve(b, "Figure 2: DPRml speedup, 6 instances", pts)
}

// BenchmarkFigure2SingleInstance runs the ablation behind the paper's
// remark that a single staged instance leaves clients idle.
func BenchmarkFigure2SingleInstance(b *testing.B) {
	cfg := figures.DefaultFigure2()
	cfg.Instances = 1
	var pts []simnet.SpeedupPoint
	var err error
	for i := 0; i < b.N; i++ {
		pts, err = figures.Figure2(cfg, nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportCurve(b, "Figure 2 ablation: DPRml speedup, single instance", pts)
}

// BenchmarkAdaptiveVsFixed compares unit-sizing policies on a heterogeneous
// pool (the design choice §3.1 describes as "dynamically controlled ...
// to match the processing abilities of the current set of donor machines").
func BenchmarkAdaptiveVsFixed(b *testing.B) {
	const donors, totalCost, seed = 60, 500_000, 3
	for _, p := range []sched.Policy{
		sched.Adaptive{Target: 30 * time.Second, Bootstrap: 1000, Min: 100},
		sched.Fixed{Size: 20000},
		sched.GSS{K: 1, Min: 100},
		sched.Factoring{Min: 100},
	} {
		b.Run(p.Name(), func(b *testing.B) {
			var m *simnet.Metrics
			var err error
			for i := 0; i < b.N; i++ {
				cfg := simnet.Config{
					Donors:         simnet.HeterogeneousLab(donors, seed),
					Policy:         p,
					ServerOverhead: 3 * time.Millisecond,
					Lease:          5 * time.Minute,
					Seed:           seed,
				}
				m, err = simnet.Run(cfg, simnet.NewDivisibleWorkload(totalCost, 40, 4096))
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(m.Makespan.Seconds(), "makespan-s")
			b.ReportMetric(m.Efficiency, "efficiency")
		})
	}
}

// BenchmarkChurn measures the lease/reissue fault-tolerance path: a third
// of the donors silently vanish mid-run (powered-off lab machines), and the
// workload must still complete.
func BenchmarkChurn(b *testing.B) {
	const donors, totalCost, seed = 45, 150_000, 5
	var m *simnet.Metrics
	for i := 0; i < b.N; i++ {
		specs := simnet.Uniform(donors, 1.0, 0.1, 2*time.Millisecond, 100e6/8)
		for j := range specs {
			if j%3 == 0 {
				specs[j].LeaveAt = time.Duration(10+j) * time.Minute
			}
		}
		cfg := simnet.Config{
			Donors:         specs,
			Policy:         sched.Adaptive{Target: 30 * time.Second, Bootstrap: 1000, Min: 100},
			ServerOverhead: 3 * time.Millisecond,
			Lease:          2 * time.Minute,
			Seed:           seed,
		}
		var err error
		m, err = simnet.Run(cfg, simnet.NewDivisibleWorkload(totalCost, 40, 4096))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(m.Makespan.Seconds(), "makespan-s")
	b.ReportMetric(float64(m.UnitsLost), "units-lost")
}

// BenchmarkDiurnal runs a multi-day workload on a lab whose machines are
// claimed by their owners every working day (9:00-17:00) — the deployment
// rhythm behind the paper's 3-year background-service run. Reported
// metrics: makespan and units lost to owner arrivals.
func BenchmarkDiurnal(b *testing.B) {
	var m *simnet.Metrics
	for i := 0; i < b.N; i++ {
		cfg := simnet.Config{
			Donors:         simnet.DiurnalLab(20, 4, 1.0, 13),
			Policy:         sched.Adaptive{Target: 30 * time.Second, Bootstrap: 1000, Min: 100},
			ServerOverhead: 3 * time.Millisecond,
			Lease:          5 * time.Minute,
			Seed:           13,
		}
		var err error
		m, err = simnet.Run(cfg, simnet.NewDivisibleWorkload(1_000_000, 40, 4096))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(m.Makespan.Hours(), "makespan-h")
	b.ReportMetric(float64(m.UnitsLost), "units-lost")
}

// BenchmarkBulkTransfer compares shipping an 8 MiB problem blob over the
// raw-socket bulk channel against tunnelling it through net/rpc — the
// paper's §2.2 rationale for using ordinary sockets for data files.
func BenchmarkBulkTransfer(b *testing.B) {
	blob := make([]byte, 8<<20)
	for i := range blob {
		blob[i] = byte(i)
	}

	b.Run("socket", func(b *testing.B) {
		bs, err := wire.NewBulkServer("127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		defer bs.Close()
		bs.Put("blob", blob)
		b.SetBytes(int64(len(blob)))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			got, err := wire.FetchBlob(bs.Addr(), "blob", 30*time.Second)
			if err != nil {
				b.Fatal(err)
			}
			if len(got) != len(blob) {
				b.Fatalf("short blob: %d", len(got))
			}
		}
	})

	b.Run("rpc", func(b *testing.B) {
		// Tunnel the same bytes through a real net/rpc call over TCP — the
		// "RMI" path the paper deliberately avoids for large data files.
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		defer ln.Close()
		srv := rpc.NewServer()
		if err := srv.Register(&BlobService{blob: blob}); err != nil {
			b.Fatal(err)
		}
		go func() {
			for {
				conn, err := ln.Accept()
				if err != nil {
					return
				}
				go srv.ServeConn(conn)
			}
		}()
		client, err := rpc.Dial("tcp", ln.Addr().String())
		if err != nil {
			b.Fatal(err)
		}
		defer client.Close()
		b.SetBytes(int64(len(blob)))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var got []byte
			if err := client.Call("BlobService.Fetch", struct{}{}, &got); err != nil {
				b.Fatal(err)
			}
			if len(got) != len(blob) {
				b.Fatalf("short blob: %d", len(got))
			}
		}
	})

	b.Run("rpc-flat", func(b *testing.B) {
		// The same rpc tunnel, but over the flat codec: how much of the
		// rpc-vs-raw gap was gob rather than net/rpc itself.
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		defer ln.Close()
		srv := rpc.NewServer()
		if err := srv.Register(&FlatBlobService{blob: blob}); err != nil {
			b.Fatal(err)
		}
		go func() {
			for {
				conn, err := ln.Accept()
				if err != nil {
					return
				}
				go srv.ServeCodec(wire.NewFlatServerCodec(conn))
			}
		}()
		conn, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			b.Fatal(err)
		}
		client := rpc.NewClientWithCodec(wire.NewFlatClientCodec(conn))
		defer client.Close()
		b.SetBytes(int64(len(blob)))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var got BlobEnvelope
			if err := client.Call("FlatBlobService.Fetch", BlobEnvelope{}, &got); err != nil {
				b.Fatal(err)
			}
			if len(got.Data) != len(blob) {
				b.Fatalf("short blob: %d", len(got.Data))
			}
		}
	})
}

// BlobEnvelope carries the bulk-transfer bench's blob through the flat
// codec (the flat methods need a named body type; a bare []byte reply
// cannot carry them).
type BlobEnvelope struct{ Data []byte }

// MarshalFlat implements wire.FlatMarshaler.
func (e BlobEnvelope) MarshalFlat(enc *wire.Encoder) { enc.Bytes(e.Data) }

// UnmarshalFlat implements wire.FlatUnmarshaler.
func (e *BlobEnvelope) UnmarshalFlat(d *wire.Decoder) { e.Data = d.Bytes() }

// FlatBlobService serves the bulk-transfer bench's blob over the flat
// codec.
type FlatBlobService struct{ blob []byte }

// Fetch returns the blob.
func (s *FlatBlobService) Fetch(_ BlobEnvelope, out *BlobEnvelope) error {
	out.Data = s.blob
	return nil
}

// BlobService serves the bulk-transfer bench's blob over net/rpc.
type BlobService struct{ blob []byte }

// Fetch returns the blob.
func (s *BlobService) Fetch(_ struct{}, out *[]byte) error {
	*out = s.blob
	return nil
}

// slowDM is an endless DataManager whose NextUnit/Consume each hold the
// problem's lock for a fixed latency — a stand-in for real partitioning
// and folding work (FASTA slicing, hit merging, likelihood bookkeeping).
// It makes coordinator serialization visible: with the old single server
// mutex, every donor of every problem queued behind this hold time; with
// per-problem locks, donors dispatch against other problems while one
// problem's DataManager is busy, so round-trip throughput scales with the
// problem count.
type slowDM struct {
	hold time.Duration
	seq  int64
}

func (d *slowDM) NextUnit(int64) (*dist.Unit, bool, error) {
	time.Sleep(d.hold)
	d.seq++
	return &dist.Unit{ID: d.seq, Algorithm: "bench/noop", Cost: 1}, true, nil
}

func (d *slowDM) Consume(int64, []byte) error {
	time.Sleep(d.hold)
	return nil
}

func (d *slowDM) Done() bool                   { return false }
func (d *slowDM) FinalResult() ([]byte, error) { return nil, nil }

// BenchmarkCoordinatorSharding measures one in-process coordinator's
// RequestTask+SubmitResult round-trip throughput as the number of
// concurrent problems grows, with a fixed pool of 16 donor goroutines
// hammering it and each DataManager call holding its problem's lock for
// 100µs. The pool is hand-rolled (not b.RunParallel, which scales its
// goroutine count with GOMAXPROCS) so the committed BENCH_prN.json curves
// are comparable across machines: the donors wait on problem locks, not
// CPU. Under the pre-shard global mutex, ns/op was flat in the problem
// count (every round-trip serialized); with per-problem state, ns/op
// drops as problems are added until the donor pool is saturated.
func BenchmarkCoordinatorSharding(b *testing.B) {
	const (
		hold      = 100 * time.Microsecond
		benchPool = 16
	)
	ctx := context.Background()
	for _, nProblems := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("problems=%d", nProblems), func(b *testing.B) {
			srv := dist.NewServer(
				dist.WithPolicy(sched.Fixed{Size: 1}),
				dist.WithLeaseTTL(time.Hour),
				dist.WithExpiryScan(time.Hour),
				dist.WithWaitHint(time.Microsecond),
			)
			defer srv.Close()
			for i := 0; i < nProblems; i++ {
				if err := srv.Submit(ctx, &dist.Problem{ID: fmt.Sprintf("contend-%d", i), DM: &slowDM{hold: hold}}); err != nil {
					b.Fatal(err)
				}
			}
			var remaining atomic.Int64
			remaining.Store(int64(b.N))
			var failed atomic.Int64
			var wg sync.WaitGroup
			b.ResetTimer()
			for g := 0; g < benchPool; g++ {
				wg.Add(1)
				go func(name string) {
					defer wg.Done()
					for remaining.Add(-1) >= 0 {
						task, _, err := srv.RequestTask(ctx, name)
						if err != nil || task == nil {
							failed.Add(1)
							continue
						}
						if err := srv.SubmitResult(ctx, &dist.Result{
							ProblemID: task.ProblemID,
							UnitID:    task.Unit.ID,
							Elapsed:   time.Millisecond,
							Donor:     name,
							Epoch:     task.Epoch,
						}); err != nil {
							failed.Add(1)
						}
					}
				}(fmt.Sprintf("bench-donor-%d", g))
			}
			wg.Wait()
			b.StopTimer()
			if n := failed.Load(); n > 0 {
				b.Fatalf("%d coordinator round-trips failed", n)
			}
		})
	}
}

// fastDM is an endless DataManager with negligible lock hold time — the
// "cold" problems of the dispatch-latency benchmark.
type fastDM struct{ seq int64 }

func (d *fastDM) NextUnit(int64) (*dist.Unit, bool, error) {
	d.seq++
	return &dist.Unit{ID: d.seq, Algorithm: "bench/noop", Cost: 1}, true, nil
}

func (d *fastDM) Consume(int64, []byte) error  { return nil }
func (d *fastDM) Done() bool                   { return false }
func (d *fastDM) FinalResult() ([]byte, error) { return nil, nil }

// BenchmarkDispatchSkipsContended measures RequestTask latency on a server
// with 2 "hot" problems (DataManager holds its shard lock 2ms per call)
// and 14 cold ones, while two background donors keep the hot shards
// contended. The TryLock fast path skips the locked hot shards and serves
// a cold problem immediately; the old blocking rotation would park every
// donor behind the 2ms holds whenever the round-robin cursor landed on a
// hot problem first (~1/8 of requests), inflating tail latency by orders
// of magnitude.
func BenchmarkDispatchSkipsContended(b *testing.B) {
	const (
		hotHold = 2 * time.Millisecond
		hot     = 2
		cold    = 14
		hotPool = 2 // background donors keeping hot shards busy
	)
	ctx := context.Background()
	srv := dist.NewServer(
		dist.WithPolicy(sched.Fixed{Size: 1}),
		dist.WithLeaseTTL(time.Hour),
		dist.WithExpiryScan(time.Hour),
		dist.WithWaitHint(time.Microsecond),
	)
	defer srv.Close()
	for i := 0; i < hot; i++ {
		if err := srv.Submit(ctx, &dist.Problem{ID: fmt.Sprintf("hot-%d", i), DM: &slowDM{hold: hotHold}}); err != nil {
			b.Fatal(err)
		}
	}
	for i := 0; i < cold; i++ {
		if err := srv.Submit(ctx, &dist.Problem{ID: fmt.Sprintf("cold-%d", i), DM: &fastDM{}}); err != nil {
			b.Fatal(err)
		}
	}
	// Background donors hammer the server so the hot shards are nearly
	// always mid-NextUnit (their round-trips serialize on the 2ms holds).
	stop := make(chan struct{})
	var bgWG sync.WaitGroup
	for g := 0; g < hotPool; g++ {
		bgWG.Add(1)
		go func(name string) {
			defer bgWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				task, _, err := srv.RequestTask(ctx, name)
				if err != nil || task == nil {
					continue
				}
				_ = srv.SubmitResult(ctx, &dist.Result{
					ProblemID: task.ProblemID, UnitID: task.Unit.ID,
					Elapsed: time.Millisecond, Donor: name, Epoch: task.Epoch,
				})
			}
		}(fmt.Sprintf("bg-%d", g))
	}
	var worst time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		task, _, err := srv.RequestTask(ctx, "probe")
		if d := time.Since(t0); d > worst {
			worst = d
		}
		if err != nil {
			b.Fatal(err)
		}
		if task != nil {
			_ = srv.SubmitResult(ctx, &dist.Result{
				ProblemID: task.ProblemID, UnitID: task.Unit.ID,
				Elapsed: time.Millisecond, Donor: "probe", Epoch: task.Epoch,
			})
		}
	}
	b.StopTimer()
	close(stop)
	bgWG.Wait()
	b.ReportMetric(float64(worst.Microseconds()), "worst-dispatch-us")
}

// oneShotDM hands out exactly one unit and is done once its result folds —
// the smallest possible workload, so the dispatch-latency benchmark
// measures the control channel and nothing else.
type oneShotDM struct{ dispatched, consumed bool }

func (d *oneShotDM) NextUnit(int64) (*dist.Unit, bool, error) {
	if d.dispatched {
		return nil, false, nil
	}
	d.dispatched = true
	return &dist.Unit{ID: 1, Algorithm: "bench/noop", Cost: 1}, true, nil
}

func (d *oneShotDM) Consume(int64, []byte) error  { d.consumed = true; return nil }
func (d *oneShotDM) Done() bool                   { return d.consumed }
func (d *oneShotDM) FinalResult() ([]byte, error) { return nil, nil }

// BenchmarkDispatchLatencyPushVsPoll measures how long an idle donor fleet
// takes to pick up freshly submitted work, comparing the two dispatch
// channels at 1/16/128/256/1024 donors:
//
//   - poll: the legacy loop — RequestTask, then sleep the server's WaitHint
//     (the production default 50ms, jittered ±20% like the donor loop does)
//     before asking again. Expected wakeup latency is the first poll
//     arrival after the Submit: ~WaitHint/2 for one donor, ~WaitHint/(n+1)
//     for n of them — donors buy latency with idle control traffic.
//   - push: donors parked in WaitTask; the Submit wakes them. Latency is a
//     channel close and one dispatch scan, independent of the fleet's poll
//     phase, and an idle fleet costs ~one control call per donor per park
//     (1s here) instead of 20/s each.
//
// Reported metrics: mean and worst wakeup latency across b.N submits, and
// the idle control-channel call rate measured over a quiet window after
// the timed section.
func BenchmarkDispatchLatencyPushVsPoll(b *testing.B) {
	ctx := context.Background()
	const waitHint = 50 * time.Millisecond
	for _, mode := range []string{"poll", "push"} {
		for _, donors := range []int{1, 16, 128, 256, 1024} {
			b.Run(fmt.Sprintf("%s/donors=%d", mode, donors), func(b *testing.B) {
				opts := []dist.ServerOption{
					dist.WithPolicy(sched.Fixed{Size: 1}),
					dist.WithLeaseTTL(time.Hour),
					dist.WithExpiryScan(time.Hour),
					dist.WithWaitHint(waitHint),
				}
				if mode == "poll" {
					opts = append(opts, dist.WithLongPoll(-1))
				}
				srv := dist.NewServer(opts...)
				defer srv.Close()

				dispatched := make(chan time.Time, 1)
				var calls atomic.Int64
				stop := make(chan struct{})
				var wg sync.WaitGroup
				for g := 0; g < donors; g++ {
					wg.Add(1)
					go func(g int, name string) {
						defer wg.Done()
						// Per-donor seed: every poller needs its own jitter
						// stream or their phases never decorrelate.
						rng := rand.New(rand.NewSource(int64(g+1) * 7919))
						for {
							select {
							case <-stop:
								return
							default:
							}
							calls.Add(1)
							var task *dist.Task
							var wait time.Duration
							var err error
							if mode == "push" {
								task, wait, err = srv.WaitTask(ctx, name, time.Second)
							} else {
								task, wait, err = srv.RequestTask(ctx, name)
							}
							if err != nil {
								return // ErrClosed at teardown
							}
							if task == nil {
								if mode == "push" {
									continue // park expired; re-park
								}
								// The donor loop's jittered poll sleep.
								f := 0.8 + 0.4*rng.Float64()
								t := time.NewTimer(time.Duration(float64(wait) * f))
								select {
								case <-stop:
									t.Stop()
									return
								case <-t.C:
								}
								continue
							}
							select {
							case dispatched <- time.Now():
							default:
							}
							_ = srv.SubmitResult(ctx, &dist.Result{
								ProblemID: task.ProblemID, UnitID: task.Unit.ID,
								Elapsed: time.Millisecond, Donor: name, Epoch: task.Epoch,
							})
						}
					}(g, fmt.Sprintf("%s-%d-%d", mode, donors, g))
				}
				// Let the fleet settle into its park/poll rhythm before
				// measuring.
				time.Sleep(150 * time.Millisecond)

				var total, worst time.Duration
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					id := fmt.Sprintf("lat-%s-%d-%d", mode, donors, i)
					t0 := time.Now()
					if err := srv.Submit(ctx, &dist.Problem{ID: id, DM: &oneShotDM{}}); err != nil {
						b.Fatal(err)
					}
					lat := (<-dispatched).Sub(t0)
					total += lat
					if lat > worst {
						worst = lat
					}
					if _, err := srv.Wait(ctx, id); err != nil {
						b.Fatal(err)
					}
					_ = srv.Forget(id)
				}
				b.StopTimer()

				// Idle control-channel rate: how hard does a fleet with no
				// work hammer the server?
				calls.Store(0)
				time.Sleep(300 * time.Millisecond)
				idleQPS := float64(calls.Load()) / 0.3

				close(stop)
				srv.Close() // unparks push donors so the pool can exit
				wg.Wait()

				b.ReportMetric(float64(total.Microseconds())/float64(b.N)/1000, "wakeup-ms")
				b.ReportMetric(float64(worst.Microseconds())/1000, "worst-wakeup-ms")
				b.ReportMetric(idleQPS, "idle-ctrl-qps")
			})
		}
	}
}

// costAlg sleeps proportionally to the unit's encoded cost — the
// synthetic workload for the swarm makespan benchmark, where the swarm's
// throttle wrapper then stretches that sleep per the donor's profile.
type costAlg struct{}

func (costAlg) Init([]byte) error { return nil }

func (costAlg) ProcessCtx(ctx context.Context, payload []byte) ([]byte, error) {
	cost := int64(binary.LittleEndian.Uint32(payload))
	t := time.NewTimer(time.Duration(cost) * costGrain)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-t.C:
	}
	return []byte{1}, nil
}

// costGrain is the full-speed compute time per unit of cost.
const costGrain = 500 * time.Microsecond

var registerCostAlgOnce sync.Once

// costDM partitions a total cost budget into units sized to whatever the
// policy asks for — the DM shape the adaptive policies need to show a
// makespan difference.
type costDM struct {
	remaining int64
	seq       int64
	folded    map[int64]bool
}

func newCostDM(total int64) *costDM {
	return &costDM{remaining: total, folded: make(map[int64]bool)}
}

func (d *costDM) NextUnit(budget int64) (*dist.Unit, bool, error) {
	if d.remaining <= 0 {
		return nil, false, nil
	}
	take := budget
	if take < 1 {
		take = 1
	}
	if take > d.remaining {
		take = d.remaining
	}
	d.remaining -= take
	d.seq++
	payload := make([]byte, 4)
	binary.LittleEndian.PutUint32(payload, uint32(take))
	return &dist.Unit{ID: d.seq, Algorithm: "bench/cost", Cost: take, Payload: payload}, true, nil
}

func (d *costDM) Consume(unitID int64, _ []byte) error { d.folded[unitID] = true; return nil }
func (d *costDM) Done() bool                           { return d.remaining <= 0 && int64(len(d.folded)) >= d.seq }
func (d *costDM) FinalResult() ([]byte, error)         { return nil, nil }
func (d *costDM) RemainingCost() int64                 { return d.remaining }

// BenchmarkSwarmMakespan drains one cost-partitioned problem through a
// real 1024-donor swarm (internal/swarm: live loopback server, shaped
// connections, throttled algorithms) on a straggler-heavy fleet — 5% of
// donors at 2% speed — under three schedulers:
//
//   - fixed64: the non-adaptive baseline. Stragglers receive the same
//     64-cost units as everyone else and sit on them ~50x longer; the
//     makespan is their tail.
//   - adaptive: per-donor throughput sizing (the paper's policy).
//     Stragglers bootstrap small and stay small, shrinking the tail.
//   - adaptive+spec: adaptive plus WithSpeculation(0.85) — once the
//     problem is 85% complete, idle fast donors re-execute straggler
//     leases and the first result wins. The lease is an hour, so
//     speculation (not expiry) is the only rescue; this is the PR 9
//     acceptance comparison.
//
// Reported per variant: wall-clock makespan, units speculated, and
// dispatched/completed totals. Run with -benchtime 1x; each iteration
// builds and drains a fresh fleet.
func BenchmarkSwarmMakespan(b *testing.B) {
	registerCostAlgOnce.Do(func() {
		dist.RegisterAlgorithm("bench/cost", func() dist.Algorithm { return costAlg{} })
	})
	const (
		donors    = 1024
		totalCost = 96 * 1024 // ~1.5 full-speed units of 64 per donor
	)
	adaptive := func() sched.Policy {
		return sched.Adaptive{Target: 25 * time.Millisecond, Bootstrap: 16, Min: 4, Max: 1024}
	}
	for _, v := range []struct {
		name      string
		policy    sched.Policy
		speculate float64
	}{
		{"fixed64", sched.Fixed{Size: 64}, 0},
		{"adaptive", adaptive(), 0},
		{"adaptive+spec", adaptive(), 0.85},
	} {
		b.Run(fmt.Sprintf("%s/donors=%d", v.name, donors), func(b *testing.B) {
			ctx := context.Background()
			var makespanMS, speculated, dispatched, completed float64
			for iter := 0; iter < b.N; iter++ {
				opts := []dist.ServerOption{
					dist.WithPolicy(v.policy),
					dist.WithLeaseTTL(time.Hour), // expiry must never rescue the tail
					dist.WithExpiryScan(time.Hour),
					dist.WithWaitHint(20 * time.Millisecond),
					dist.WithDispatchBatch(-1), // single-unit leases: makespan isolates sizing+speculation
				}
				if v.speculate > 0 {
					opts = append(opts, dist.WithSpeculation(v.speculate))
				}
				srv, err := dist.ListenAndServe("127.0.0.1:0", "127.0.0.1:0", opts...)
				if err != nil {
					b.Fatal(err)
				}
				sw, err := swarm.New(swarm.Config{
					RPCAddr: srv.RPCAddr(),
					Specs:   simnet.StragglerLab(donors, 0.05, 0.02, 7),
					Seed:    7,
				})
				if err != nil {
					b.Fatal(err)
				}
				if err := sw.Start(ctx); err != nil {
					b.Fatal(err)
				}
				dm := newCostDM(totalCost)
				start := time.Now()
				if err := srv.Submit(ctx, &dist.Problem{ID: "makespan", DM: dm}); err != nil {
					b.Fatal(err)
				}
				if _, err := srv.Wait(ctx, "makespan"); err != nil {
					b.Fatal(err)
				}
				makespan := time.Since(start)
				st, _ := srv.Stats(ctx, "makespan")
				sw.Stop()
				srv.Close()
				makespanMS += float64(makespan.Milliseconds())
				speculated += float64(st.Speculated)
				dispatched += float64(st.Dispatched)
				completed += float64(st.Completed)
				if st.Completed > st.Dispatched {
					b.Fatalf("completed %d > dispatched %d", st.Completed, st.Dispatched)
				}
			}
			n := float64(b.N)
			b.ReportMetric(makespanMS/n, "makespan-ms")
			b.ReportMetric(speculated/n, "speculated")
			b.ReportMetric(dispatched/n, "dispatched")
			b.ReportMetric(completed/n, "completed")
		})
	}
}

// dedupAlg acknowledges a unit after Init saw the shared alignment — the
// cheapest donor-side work that still forces every donor through the
// shared-blob fetch path the dedup benchmark measures.
type dedupAlg struct{ ok bool }

func (a *dedupAlg) Init(shared []byte) error {
	a.ok = len(shared) > 0
	return nil
}

func (a *dedupAlg) ProcessCtx(context.Context, []byte) ([]byte, error) {
	if !a.ok {
		return nil, fmt.Errorf("no shared data")
	}
	return []byte{1}, nil
}

var registerDedupAlgOnce sync.Once

// dedupDM hands out a fixed number of trivial units.
type dedupDM struct{ units, seq, done int64 }

func (d *dedupDM) NextUnit(int64) (*dist.Unit, bool, error) {
	if d.seq >= d.units {
		return nil, false, nil
	}
	d.seq++
	return &dist.Unit{ID: d.seq, Algorithm: "bench/dedup", Cost: 1}, true, nil
}

func (d *dedupDM) Consume(int64, []byte) error  { d.done++; return nil }
func (d *dedupDM) Done() bool                   { return d.done >= d.units }
func (d *dedupDM) FinalResult() ([]byte, error) { return nil, nil }

// BenchmarkSharedBlobDedup measures the cost of the paper's shared data
// when N problem instances share one alignment — the exact waste the
// content-addressed bulk store exists to remove. 16 problems carrying the
// same 1 MiB blob run over a real loopback deployment (4 networked donors
// per mode); reported per mode:
//
//	stored-MB     bulk bytes resident server-side after the submits
//	fetched-MB/donor  bulk bytes shipped to an average donor
//	submit-ms     wall time of the 16 Submit calls (content mode pays the
//	              SHA-256 here — microseconds per shared megabyte — which
//	              is what buys the wire reduction)
//	drain-ms      donor launch to last problem folded: the latency the
//	              dedup actually removes, since per-problem keys make every
//	              donor refetch the alignment per problem (and thrash its
//	              bounded problem cache) before computing
//
// With per-problem keys every problem stores its own copy and every donor
// fetches every problem's copy; content-addressed, the server stores one
// refcounted copy and each donor fetches it once (digest-keyed cache), an
// ~16x drop on both byte axes. BENCH_pr5.json records the ablation.
func BenchmarkSharedBlobDedup(b *testing.B) {
	registerDedupAlgOnce.Do(func() {
		dist.RegisterAlgorithm("bench/dedup", func() dist.Algorithm { return &dedupAlg{} })
	})
	shared := make([]byte, 1<<20)
	for i := range shared {
		shared[i] = byte(i * 31)
	}
	const (
		problems = 16
		units    = 8 // per problem: every donor likely touches every problem
		donors   = 4
	)
	ctx := context.Background()
	for _, mode := range []struct {
		name    string
		content bool
	}{{"content-addressed", true}, {"per-problem-keys", false}} {
		b.Run(mode.name, func(b *testing.B) {
			var storedMB, fetchedMBPerDonor, submitMS, drainMS float64
			for iter := 0; iter < b.N; iter++ {
				srv, err := dist.ListenAndServe("127.0.0.1:0", "127.0.0.1:0",
					dist.WithPolicy(sched.Fixed{Size: 1}),
					dist.WithLeaseTTL(time.Hour),
					dist.WithExpiryScan(time.Hour),
					dist.WithWaitHint(time.Millisecond),
					dist.WithContentBulk(mode.content),
				)
				if err != nil {
					b.Fatal(err)
				}
				t0 := time.Now()
				for i := 0; i < problems; i++ {
					if err := srv.Submit(ctx, &dist.Problem{
						ID:         fmt.Sprintf("dedup-%d", i),
						DM:         &dedupDM{units: units},
						SharedData: shared,
					}); err != nil {
						b.Fatal(err)
					}
				}
				submitMS += float64(time.Since(t0).Microseconds()) / 1000
				storedMB += float64(srv.BulkStats().StoredBytes) / (1 << 20)

				var wg sync.WaitGroup
				pool := make([]*dist.Donor, donors)
				clients := make([]*dist.RPCClient, donors)
				t0 = time.Now()
				for g := range pool {
					cl, err := dist.Dial(srv.RPCAddr(), 10*time.Second)
					if err != nil {
						b.Fatal(err)
					}
					clients[g] = cl
					pool[g] = dist.NewDonor(cl, dist.WithName(fmt.Sprintf("dedup-%s-%d", mode.name, g)))
					wg.Add(1)
					go func(d *dist.Donor) { defer wg.Done(); _ = d.Run(ctx) }(pool[g])
				}
				for i := 0; i < problems; i++ {
					if _, err := srv.Wait(ctx, fmt.Sprintf("dedup-%d", i)); err != nil {
						b.Fatal(err)
					}
				}
				drainMS += float64(time.Since(t0).Microseconds()) / 1000
				fetchedMBPerDonor += float64(srv.BulkStats().BytesServed) / (1 << 20) / donors
				for _, d := range pool {
					d.Stop()
				}
				wg.Wait()
				for _, cl := range clients {
					_ = cl.Close()
				}
				srv.Close()
			}
			b.ReportMetric(storedMB/float64(b.N), "stored-MB")
			b.ReportMetric(fetchedMBPerDonor/float64(b.N), "fetched-MB/donor")
			b.ReportMetric(submitMS/float64(b.N), "submit-ms")
			b.ReportMetric(drainMS/float64(b.N), "drain-ms")
		})
	}
}

// tinyDM hands out a fixed number of minimal units with a small payload —
// the worst case for per-unit control overhead, which is exactly what the
// flat codec and batched dispatch attack.
type tinyDM struct {
	units, seq, done int64
	payload          []byte
}

func (d *tinyDM) NextUnit(int64) (*dist.Unit, bool, error) {
	if d.seq >= d.units {
		return nil, false, nil
	}
	d.seq++
	return &dist.Unit{ID: d.seq, Algorithm: "bench/tiny", Cost: 1, Payload: d.payload}, true, nil
}

func (d *tinyDM) Consume(int64, []byte) error  { d.done++; return nil }
func (d *tinyDM) Done() bool                   { return d.done >= d.units }
func (d *tinyDM) FinalResult() ([]byte, error) { return nil, nil }

// tinyAlg acknowledges a unit with a one-byte result — no compute, so the
// drain time is almost pure dispatch/result round-trip cost.
type tinyAlg struct{}

func (tinyAlg) Init([]byte) error { return nil }
func (tinyAlg) ProcessCtx(context.Context, []byte) ([]byte, error) {
	return []byte{1}, nil
}

var registerTinyAlgOnce sync.Once

// BenchmarkCodecBatchAblation drains one problem of 2000 tiny units
// through a real loopback deployment (4 networked donors) under each
// codec × dispatch-batch combination — the PR 7 ablation. With tiny units
// the drain is dominated by control-channel round trips, so the reported
// drain-ms/units-per-sec isolate what the flat codec (no per-message
// reflection) and batched WaitTask replies (fewer round trips) each buy.
// BENCH_pr7.json records the ablation.
func BenchmarkCodecBatchAblation(b *testing.B) {
	registerTinyAlgOnce.Do(func() {
		dist.RegisterAlgorithm("bench/tiny", func() dist.Algorithm { return tinyAlg{} })
	})
	const (
		units  = 2000
		donors = 4
	)
	payload := make([]byte, 64)
	for i := range payload {
		payload[i] = byte(i)
	}
	ctx := context.Background()
	for _, mode := range []struct {
		name  string
		flat  bool
		batch int
	}{
		{"gob/batch=1", false, -1},
		{"gob/batch=8", false, 8},
		{"flat/batch=1", true, -1},
		{"flat/batch=8", true, 8},
	} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			var drainMS float64
			for iter := 0; iter < b.N; iter++ {
				srv, err := dist.ListenAndServe("127.0.0.1:0", "127.0.0.1:0",
					dist.WithPolicy(sched.Fixed{Size: 1}),
					dist.WithLeaseTTL(time.Hour),
					dist.WithExpiryScan(time.Hour),
					dist.WithWaitHint(time.Millisecond),
					dist.WithFlatCodec(mode.flat),
					dist.WithDispatchBatch(mode.batch),
				)
				if err != nil {
					b.Fatal(err)
				}
				if err := srv.Submit(ctx, &dist.Problem{
					ID: "codec-ablation",
					DM: &tinyDM{units: units, payload: payload},
				}); err != nil {
					b.Fatal(err)
				}
				var wg sync.WaitGroup
				pool := make([]*dist.Donor, donors)
				clients := make([]*dist.RPCClient, donors)
				t0 := time.Now()
				for g := range pool {
					cl, err := dist.Dial(srv.RPCAddr(), 10*time.Second, dist.WithDialFlatCodec(mode.flat))
					if err != nil {
						b.Fatal(err)
					}
					clients[g] = cl
					pool[g] = dist.NewDonor(cl,
						dist.WithName(fmt.Sprintf("codec-%s-%d", mode.name, g)),
						dist.WithTaskBatch(mode.batch),
					)
					wg.Add(1)
					go func(d *dist.Donor) { defer wg.Done(); _ = d.Run(ctx) }(pool[g])
				}
				if _, err := srv.Wait(ctx, "codec-ablation"); err != nil {
					b.Fatal(err)
				}
				drainMS += float64(time.Since(t0).Microseconds()) / 1000
				for _, d := range pool {
					d.Stop()
				}
				wg.Wait()
				for _, cl := range clients {
					_ = cl.Close()
				}
				srv.Close()
			}
			b.ReportMetric(drainMS/float64(b.N), "drain-ms")
			b.ReportMetric(float64(units)*1000*float64(b.N)/drainMS, "units/s")
		})
	}
}

// BenchmarkDSEARCHEndToEnd runs a real (non-simulated) distributed search
// on in-process workers: FASTA partitioning, gob codecs, scheduling, hit
// merging — everything but physical network and real donor machines.
func BenchmarkDSEARCHEndToEnd(b *testing.B) {
	gen := seq.NewGenerator(seq.Protein, 9)
	w := gen.NewSearchWorkload(120, 3, 3, seq.LengthModel{Mean: 150, StdDev: 40, Min: 60, Max: 300})
	cfg := dsearch.DefaultConfig()
	cfg.TopK = 10
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := dsearch.NewProblem("bench", w.DB, w.Queries, cfg)
		if err != nil {
			b.Fatal(err)
		}
		out, err := dist.RunLocal(context.Background(), p, 4, sched.Adaptive{Target: 50 * time.Millisecond, Bootstrap: 5000, Min: 500})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := dsearch.DecodeResult(out, cfg.TopK); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(w.DB.TotalResidues()), "db-residues")
}

// BenchmarkDPRmlEndToEnd runs a real distributed tree build on in-process
// workers (10 taxa so a bench iteration stays around a second).
func BenchmarkDPRmlEndToEnd(b *testing.B) {
	taxa := make([]string, 10)
	for i := range taxa {
		taxa[i] = "t" + string(rune('A'+i))
	}
	tree, err := likelihood.RandomTree(taxa, 0.05, 0.3, 4)
	if err != nil {
		b.Fatal(err)
	}
	model, err := likelihood.NewHKY85(2, [4]float64{0.25, 0.25, 0.25, 0.25})
	if err != nil {
		b.Fatal(err)
	}
	aln, err := likelihood.Simulate(tree, model, likelihood.UniformRates(), 300, 5)
	if err != nil {
		b.Fatal(err)
	}
	opts := dprml.Options{Model: "HKY85:kappa=2", LocalRounds: 1, FinalRounds: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := dprml.NewProblem("bench", aln, opts)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := dist.RunLocal(context.Background(), p, 4, sched.Adaptive{Target: 100 * time.Millisecond, Bootstrap: 4000, Min: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkJournalOverhead is the PR 8 durability-cost ablation: the same
// tiny-unit DSEARCH drain with the journal off, on (the production
// group-commit configuration), and on with an fsync per record (the
// worst-case configuration the group commit exists to avoid). Units are
// one database sequence each, so the drain is dominated by
// dispatch/fold traffic and the per-fold journal append is the variable
// under test. The timer covers only the drain — server open, problem
// submission and the shutdown checkpoint happen with the clock stopped,
// because those are one-time latencies a deployment amortises over hours,
// not drain throughput. BENCH_pr8.json records the ablation; the contract
// is that journal-on stays within 10% of journal-off.
func BenchmarkJournalOverhead(b *testing.B) {
	gen := seq.NewGenerator(seq.Protein, 77)
	w := gen.NewSearchWorkload(2000, 1, 2, seq.LengthModel{Mean: 60, StdDev: 10, Min: 40, Max: 90})
	cfg := dsearch.DefaultConfig()
	cfg.TopK = 5
	const donors = 4

	drain := func(b *testing.B, durable, fsyncEvery bool) {
		b.Helper()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			opts := []dist.ServerOption{
				dist.WithPolicy(sched.Fixed{Size: 1}), // one sequence per unit
				dist.WithLeaseTTL(time.Hour),
				dist.WithExpiryScan(time.Hour),
				dist.WithWaitHint(time.Millisecond),
				dist.WithAutoForget(true),
			}
			if durable {
				opts = append(opts,
					dist.WithDataDir(b.TempDir()),
					dist.WithJournalFsync(fsyncEvery))
			}
			srv, err := dist.OpenServer(opts...)
			if err != nil {
				b.Fatal(err)
			}
			p, err := dsearch.NewProblem("bench-journal", w.DB, w.Queries, cfg)
			if err != nil {
				b.Fatal(err)
			}
			ctx, cancel := context.WithCancel(context.Background())
			if err := srv.Submit(ctx, p); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			var wg sync.WaitGroup
			for d := 0; d < donors; d++ {
				don := dist.NewDonor(srv,
					dist.WithName(fmt.Sprintf("bench-%d", d)),
					dist.WithCancelPoll(2*time.Millisecond))
				wg.Add(1)
				go func() {
					defer wg.Done()
					_ = don.Run(ctx)
				}()
			}
			if _, err := srv.Wait(ctx, "bench-journal"); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			cancel()
			wg.Wait()
			if err := srv.Close(); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
		b.ReportMetric(float64(w.DB.Len())*float64(b.N)/b.Elapsed().Seconds(), "units/s")
	}

	b.Run("journal-off", func(b *testing.B) { drain(b, false, false) })
	b.Run("journal-on", func(b *testing.B) { drain(b, true, false) })
	b.Run("journal-fsync-every-record", func(b *testing.B) { drain(b, true, true) })
}

// BenchmarkVerifyOverhead is the PR 10 defense-cost ablation: the same
// tiny-unit DSEARCH drain on an all-honest in-process fleet with quorum
// spot-checking off, at the recommended production fraction (0.05), and
// at an aggressive fraction (0.25), all at quorum 2. Each verified unit
// is computed twice and held until the replicas agree, so the fraction
// bounds the duplicate-compute cost directly; probation rides the
// default (4 agreements per donor) because a deployment pays it too.
// The contract is that fraction 0 is within noise of a build without the
// subsystem and fraction 0.05 stays within 10% of fraction 0.
// BENCH_pr10.json records the ablation.
func BenchmarkVerifyOverhead(b *testing.B) {
	gen := seq.NewGenerator(seq.Protein, 99)
	w := gen.NewSearchWorkload(2000, 1, 2, seq.LengthModel{Mean: 60, StdDev: 10, Min: 40, Max: 90})
	cfg := dsearch.DefaultConfig()
	cfg.TopK = 5
	const donors = 4

	drain := func(b *testing.B, fraction float64) {
		b.Helper()
		var verified float64
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			srv, err := dist.OpenServer(
				dist.WithPolicy(sched.Fixed{Size: 1}), // one sequence per unit
				dist.WithLeaseTTL(time.Hour),
				dist.WithExpiryScan(time.Hour),
				dist.WithWaitHint(time.Millisecond),
				dist.WithVerify(fraction, 2),
			)
			if err != nil {
				b.Fatal(err)
			}
			p, err := dsearch.NewProblem("bench-verify", w.DB, w.Queries, cfg)
			if err != nil {
				b.Fatal(err)
			}
			ctx, cancel := context.WithCancel(context.Background())
			if err := srv.Submit(ctx, p); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			var wg sync.WaitGroup
			for d := 0; d < donors; d++ {
				don := dist.NewDonor(srv,
					dist.WithName(fmt.Sprintf("bench-%d", d)),
					dist.WithCancelPoll(2*time.Millisecond))
				wg.Add(1)
				go func() {
					defer wg.Done()
					_ = don.Run(ctx)
				}()
			}
			if _, err := srv.Wait(ctx, "bench-verify"); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			st, err := srv.Stats(ctx, "bench-verify")
			if err != nil {
				b.Fatal(err)
			}
			verified += float64(st.Verified)
			cancel()
			wg.Wait()
			if err := srv.Close(); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
		b.ReportMetric(float64(w.DB.Len())*float64(b.N)/b.Elapsed().Seconds(), "units/s")
		b.ReportMetric(verified/float64(b.N), "verified-units")
	}

	b.Run("verify-off", func(b *testing.B) { drain(b, 0) })
	b.Run("verify-fraction-0.05", func(b *testing.B) { drain(b, 0.05) })
	b.Run("verify-fraction-0.25", func(b *testing.B) { drain(b, 0.25) })
}
