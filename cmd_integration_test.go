package repro

import (
	"bytes"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/seq"
)

// buildCmdBinaries compiles cmd/server and cmd/donor once per test run
// (both multi-process tests share the build) and returns their paths. The
// build directory outlives any single test, so TestMain — not t.TempDir —
// owns its cleanup.
var buildOnce sync.Once
var buildDir, builtServer, builtDonor string
var buildErr error

func TestMain(m *testing.M) {
	code := m.Run()
	if buildDir != "" {
		_ = os.RemoveAll(buildDir)
	}
	os.Exit(code)
}

func buildCmdBinaries(t *testing.T) (serverBin, donorBin string) {
	t.Helper()
	buildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "repro-cmd-bin")
		if err != nil {
			buildErr = err
			return
		}
		buildDir = dir
		builtServer = filepath.Join(dir, "server")
		builtDonor = filepath.Join(dir, "donor")
		for _, b := range []struct{ out, pkg string }{
			{builtServer, "./cmd/server"},
			{builtDonor, "./cmd/donor"},
		} {
			cmd := exec.Command("go", "build", "-o", b.out, b.pkg)
			cmd.Env = os.Environ()
			if out, err := cmd.CombinedOutput(); err != nil {
				buildErr = fmt.Errorf("building %s: %v\n%s", b.pkg, err, out)
				return
			}
		}
	})
	if buildErr != nil {
		t.Fatal(buildErr)
	}
	return builtServer, builtDonor
}

// TestServerDonorBinaries is the full multi-process deployment test: it
// builds the real cmd/server and cmd/donor binaries, starts one server and
// two donor processes on loopback (control over net/rpc, bulk data over a
// raw socket), runs a DSEARCH problem end to end, and checks the report.
func TestServerDonorBinaries(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process test skipped in -short mode")
	}
	dir := t.TempDir()

	// Synthetic database and queries on disk, as a user would provide.
	gen := seq.NewGenerator(seq.Protein, 77)
	w := gen.NewSearchWorkload(60, 2, 3, seq.LengthModel{Mean: 120, StdDev: 30, Min: 60, Max: 200})
	dbPath := filepath.Join(dir, "db.fasta")
	qPath := filepath.Join(dir, "q.fasta")
	if err := seq.WriteFASTAFile(dbPath, w.DB); err != nil {
		t.Fatal(err)
	}
	if err := seq.WriteFASTAFile(qPath, w.Queries); err != nil {
		t.Fatal(err)
	}

	serverBin, donorBin := buildCmdBinaries(t)

	rpcAddr := freeAddr(t)
	bulkAddr := freeAddr(t)

	var serverOut bytes.Buffer
	server := exec.Command(serverBin,
		"-app", "dsearch", "-db", dbPath, "-queries", qPath,
		"-rpc", rpcAddr, "-bulk", bulkAddr, "-policy", "adaptive:200ms")
	server.Stdout = &serverOut
	server.Stderr = &serverOut
	if err := server.Start(); err != nil {
		t.Fatal(err)
	}
	serverDone := make(chan error, 1)
	go func() { serverDone <- server.Wait() }()
	defer func() { _ = server.Process.Kill() }()

	// Give the listeners a moment, then attach two donors.
	waitForListener(t, rpcAddr)
	var donors []*exec.Cmd
	for i := 0; i < 2; i++ {
		d := exec.Command(donorBin, "-server", rpcAddr, "-name", fmt.Sprintf("it-donor-%d", i))
		d.Stdout = os.Stderr
		d.Stderr = os.Stderr
		if err := d.Start(); err != nil {
			t.Fatal(err)
		}
		donors = append(donors, d)
	}
	defer func() {
		for _, d := range donors {
			_ = d.Process.Kill()
			_ = d.Wait()
		}
	}()

	select {
	case err := <-serverDone:
		if err != nil {
			t.Fatalf("server exited with error: %v\n%s", err, serverOut.String())
		}
	case <-time.After(90 * time.Second):
		t.Fatalf("server did not finish in 90s; output so far:\n%s", serverOut.String())
	}

	out := serverOut.String()
	if !strings.Contains(out, "QUERY") {
		t.Errorf("server output lacks hit report:\n%s", out)
	}
	for q, members := range w.Planted {
		if !strings.Contains(out, q) {
			t.Errorf("report missing query %s", q)
		}
		if !strings.Contains(out, members[0]) {
			t.Errorf("report missing planted homolog %s for %s", members[0], q)
		}
	}
}

// statsLine extracts (dispatched, completed, reissued) from the server
// binary's final accounting log line.
var statsLineRE = regexp.MustCompile(`(\d+) units dispatched, (\d+) completed, (\d+) reissued`)

func parseStatsLine(t *testing.T, out string) (dispatched, completed, reissued int) {
	t.Helper()
	m := statsLineRE.FindStringSubmatch(out)
	if m == nil {
		t.Fatalf("server output lacks the stats line:\n%s", out)
	}
	dispatched, _ = strconv.Atoi(m[1])
	completed, _ = strconv.Atoi(m[2])
	reissued, _ = strconv.Atoi(m[3])
	return dispatched, completed, reissued
}

// TestDonorChurnRealNetwork promotes the manual tmux churn probe into the
// suite: a real cmd/server process on loopback, a first generation of real
// cmd/donor processes SIGKILLed mid-run (taking their leases with them),
// and a replacement generation that must drain the remainder. Asserts
// completion, the reissue accounting the kill must have caused (lease 2s,
// so the dead donors' units come back quickly), that no unit was folded
// twice (completed never exceeds dispatched, and the planted homologs
// appear in the report exactly as a clean run produces them), and that the
// replacement donors actually worked.
func TestDonorChurnRealNetwork(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process churn test skipped in -short mode")
	}
	serverBin, donorBin := buildCmdBinaries(t)
	dir := t.TempDir()

	// A workload big enough that three donors need several seconds: the
	// kill at ~2s is guaranteed to land mid-run, with leases in flight
	// (donors compute ~300ms units back to back; the lease-free gap
	// between SubmitResult and the next dispatch is microseconds).
	gen := seq.NewGenerator(seq.Protein, 42)
	w := gen.NewSearchWorkload(12000, 3, 3, seq.LengthModel{Mean: 150, StdDev: 40, Min: 60, Max: 300})
	dbPath := filepath.Join(dir, "db.fasta")
	qPath := filepath.Join(dir, "q.fasta")
	if err := seq.WriteFASTAFile(dbPath, w.DB); err != nil {
		t.Fatal(err)
	}
	if err := seq.WriteFASTAFile(qPath, w.Queries); err != nil {
		t.Fatal(err)
	}

	rpcAddr := freeAddr(t)
	bulkAddr := freeAddr(t)
	var serverOut syncBuffer
	server := exec.Command(serverBin,
		"-app", "dsearch", "-db", dbPath, "-queries", qPath,
		"-rpc", rpcAddr, "-bulk", bulkAddr,
		"-policy", "adaptive:300ms", "-lease", "2s")
	server.Stdout = &serverOut
	server.Stderr = &serverOut
	if err := server.Start(); err != nil {
		t.Fatal(err)
	}
	serverDone := make(chan error, 1)
	go func() { serverDone <- server.Wait() }()
	defer func() { _ = server.Process.Kill() }()
	waitForListener(t, rpcAddr)

	spawnDonor := func(name string) *exec.Cmd {
		t.Helper()
		d := exec.Command(donorBin, "-server", rpcAddr, "-name", name)
		d.Stdout = os.Stderr
		d.Stderr = os.Stderr
		if err := d.Start(); err != nil {
			t.Fatal(err)
		}
		return d
	}
	var gen1 []*exec.Cmd
	for i := 0; i < 3; i++ {
		gen1 = append(gen1, spawnDonor(fmt.Sprintf("churn-gen1-%d", i)))
	}

	// Let the first generation sink its teeth in, then kill it ungracefully.
	time.Sleep(2 * time.Second)
	select {
	case err := <-serverDone:
		t.Fatalf("workload finished before the churn (enlarge it): err=%v\n%s", err, serverOut.String())
	default:
	}
	for _, d := range gen1 {
		_ = d.Process.Kill() // SIGKILL: no goodbye, leases die with the process
		_ = d.Wait()
	}

	var gen2 []*exec.Cmd
	for i := 0; i < 3; i++ {
		gen2 = append(gen2, spawnDonor(fmt.Sprintf("churn-gen2-%d", i)))
	}
	defer func() {
		for _, d := range gen2 {
			_ = d.Process.Kill()
			_ = d.Wait()
		}
	}()

	select {
	case err := <-serverDone:
		if err != nil {
			t.Fatalf("server exited with error: %v\n%s", err, serverOut.String())
		}
	case <-time.After(120 * time.Second):
		t.Fatalf("server did not finish in 120s after churn; output so far:\n%s", serverOut.String())
	}

	out := serverOut.String()
	dispatched, completed, reissued := parseStatsLine(t, out)
	t.Logf("churn accounting: %d dispatched, %d completed, %d reissued", dispatched, completed, reissued)
	if completed == 0 {
		t.Error("no units completed")
	}
	if reissued < 1 {
		t.Errorf("reissued = %d, want >= 1 (three donors were SIGKILLed mid-run)", reissued)
	}
	if completed > dispatched {
		t.Errorf("completed %d > dispatched %d: some unit was folded twice", completed, dispatched)
	}
	// The report must be what an unchurned run produces: every planted
	// homolog found for its query.
	if !strings.Contains(out, "QUERY") {
		t.Errorf("server output lacks hit report:\n%s", out)
	}
	for q, members := range w.Planted {
		if !strings.Contains(out, q) {
			t.Errorf("report missing query %s", q)
		}
		if !strings.Contains(out, members[0]) {
			t.Errorf("report missing planted homolog %s for %s", members[0], q)
		}
	}
}

// TestCoordinatorCrashRecoveryRealNetwork is the durability counterpart of
// the donor-churn test: this time the COORDINATOR dies. A real cmd/server
// with -data-dir is SIGKILLed mid-problem (no goodbye, no final
// checkpoint), then restarted on the same directory and the same control
// address — WITHOUT the -db/-queries inputs, so the run can only continue
// if the journal actually restored the problem. The surviving donors
// redial on their own (PR 2 machinery), any straggler results they carry
// from the first incarnation are fenced by epoch, and the problem
// completes without being resubmitted, producing exactly the report a
// crash-free run produces.
func TestCoordinatorCrashRecoveryRealNetwork(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process crash-recovery test skipped in -short mode")
	}
	serverBin, donorBin := buildCmdBinaries(t)
	dir := t.TempDir()
	dataDir := filepath.Join(dir, "journal")

	// Sized like the churn workload: several seconds of work for three
	// donors, so the kill lands mid-problem with units in flight.
	gen := seq.NewGenerator(seq.Protein, 1234)
	w := gen.NewSearchWorkload(12000, 3, 3, seq.LengthModel{Mean: 150, StdDev: 40, Min: 60, Max: 300})
	dbPath := filepath.Join(dir, "db.fasta")
	qPath := filepath.Join(dir, "q.fasta")
	if err := seq.WriteFASTAFile(dbPath, w.DB); err != nil {
		t.Fatal(err)
	}
	if err := seq.WriteFASTAFile(qPath, w.Queries); err != nil {
		t.Fatal(err)
	}

	rpcAddr := freeAddr(t)
	bulkAddr := freeAddr(t)
	startServer := func(out *syncBuffer, withInputs bool) *exec.Cmd {
		t.Helper()
		args := []string{
			"-app", "dsearch", "-rpc", rpcAddr, "-bulk", bulkAddr,
			"-policy", "adaptive:300ms", "-lease", "2s",
			"-data-dir", dataDir, "-snapshot-records", "20",
		}
		if withInputs {
			args = append(args, "-db", dbPath, "-queries", qPath)
		}
		s := exec.Command(serverBin, args...)
		s.Stdout = out
		s.Stderr = out
		if err := s.Start(); err != nil {
			t.Fatal(err)
		}
		return s
	}

	var out1 syncBuffer
	server1 := startServer(&out1, true)
	done1 := make(chan error, 1)
	go func() { done1 <- server1.Wait() }()
	defer func() { _ = server1.Process.Kill() }()
	waitForListener(t, rpcAddr)

	// Donors with a fast redial loop: they must survive the coordinator's
	// death and reattach to its successor unassisted.
	var donors []*exec.Cmd
	for i := 0; i < 3; i++ {
		d := exec.Command(donorBin, "-server", rpcAddr,
			"-name", fmt.Sprintf("crash-donor-%d", i), "-retry", "500ms")
		d.Stdout = os.Stderr
		d.Stderr = os.Stderr
		if err := d.Start(); err != nil {
			t.Fatal(err)
		}
		donors = append(donors, d)
	}
	defer func() {
		for _, d := range donors {
			_ = d.Process.Kill()
			_ = d.Wait()
		}
	}()

	// Let the fleet work past at least one checkpoint scan (2s ticks, 20
	// records per checkpoint), then kill the coordinator without ceremony.
	time.Sleep(4 * time.Second)
	select {
	case err := <-done1:
		t.Fatalf("workload finished before the crash (enlarge it): err=%v\n%s", err, out1.String())
	default:
	}
	_ = server1.Process.Kill() // SIGKILL: journal tail stays as-is on disk
	<-done1                    // reap via the goroutine already in Wait

	var out2 syncBuffer
	server2 := startServer(&out2, false) // no -db/-queries: only the journal can resume this
	done2 := make(chan error, 1)
	go func() { done2 <- server2.Wait() }()
	defer func() { _ = server2.Process.Kill() }()
	waitForListener(t, rpcAddr)

	select {
	case err := <-done2:
		if err != nil {
			t.Fatalf("restarted server exited with error: %v\n%s", err, out2.String())
		}
	case <-time.After(120 * time.Second):
		t.Fatalf("restarted server did not finish in 120s; output so far:\n%s", out2.String())
	}

	restarted := out2.String()
	if !strings.Contains(restarted, "recovered problem \"dsearch\"") {
		t.Errorf("restart log lacks the recovery summary:\n%s", restarted)
	}
	if !strings.Contains(restarted, "resuming recovered problem") {
		t.Errorf("restarted server did not resume from the journal:\n%s", restarted)
	}
	dispatched, completed, reissued := parseStatsLine(t, restarted)
	t.Logf("post-recovery accounting: %d dispatched, %d completed, %d reissued", dispatched, completed, reissued)
	if completed == 0 {
		t.Error("no units completed")
	}
	if completed > dispatched {
		t.Errorf("completed %d > dispatched %d: some unit was folded twice across the restart", completed, dispatched)
	}
	// The report must be exactly what a crash-free run produces: every
	// planted homolog found, nothing lost to the crash, nothing double
	// counted by replay or by fenced stragglers.
	if !strings.Contains(restarted, "QUERY") {
		t.Errorf("server output lacks hit report:\n%s", restarted)
	}
	for q, members := range w.Planted {
		if !strings.Contains(restarted, q) {
			t.Errorf("report missing query %s", q)
		}
		if !strings.Contains(restarted, members[0]) {
			t.Errorf("report missing planted homolog %s for %s", members[0], q)
		}
	}
}

// syncBuffer is a mutex-guarded bytes.Buffer: the server process writes
// into it from its own pipe goroutines while the test reads mid-run.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// freeAddr reserves a loopback port and returns host:port.
func freeAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// waitForListener polls until the server's RPC port accepts connections.
func waitForListener(t *testing.T, addr string) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		conn, err := net.DialTimeout("tcp", addr, time.Second)
		if err == nil {
			conn.Close()
			return
		}
		time.Sleep(100 * time.Millisecond)
	}
	t.Fatalf("server never listened on %s", addr)
}
