package repro

import (
	"bytes"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/seq"
)

// TestServerDonorBinaries is the full multi-process deployment test: it
// builds the real cmd/server and cmd/donor binaries, starts one server and
// two donor processes on loopback (control over net/rpc, bulk data over a
// raw socket), runs a DSEARCH problem end to end, and checks the report.
func TestServerDonorBinaries(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process test skipped in -short mode")
	}
	dir := t.TempDir()

	// Synthetic database and queries on disk, as a user would provide.
	gen := seq.NewGenerator(seq.Protein, 77)
	w := gen.NewSearchWorkload(60, 2, 3, seq.LengthModel{Mean: 120, StdDev: 30, Min: 60, Max: 200})
	dbPath := filepath.Join(dir, "db.fasta")
	qPath := filepath.Join(dir, "q.fasta")
	if err := seq.WriteFASTAFile(dbPath, w.DB); err != nil {
		t.Fatal(err)
	}
	if err := seq.WriteFASTAFile(qPath, w.Queries); err != nil {
		t.Fatal(err)
	}

	serverBin := filepath.Join(dir, "server")
	donorBin := filepath.Join(dir, "donor")
	for _, b := range []struct{ out, pkg string }{
		{serverBin, "./cmd/server"},
		{donorBin, "./cmd/donor"},
	} {
		cmd := exec.Command("go", "build", "-o", b.out, b.pkg)
		cmd.Env = os.Environ()
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", b.pkg, err, out)
		}
	}

	rpcAddr := freeAddr(t)
	bulkAddr := freeAddr(t)

	var serverOut bytes.Buffer
	server := exec.Command(serverBin,
		"-app", "dsearch", "-db", dbPath, "-queries", qPath,
		"-rpc", rpcAddr, "-bulk", bulkAddr, "-policy", "adaptive:200ms")
	server.Stdout = &serverOut
	server.Stderr = &serverOut
	if err := server.Start(); err != nil {
		t.Fatal(err)
	}
	serverDone := make(chan error, 1)
	go func() { serverDone <- server.Wait() }()
	defer func() { _ = server.Process.Kill() }()

	// Give the listeners a moment, then attach two donors.
	waitForListener(t, rpcAddr)
	var donors []*exec.Cmd
	for i := 0; i < 2; i++ {
		d := exec.Command(donorBin, "-server", rpcAddr, "-name", fmt.Sprintf("it-donor-%d", i))
		d.Stdout = os.Stderr
		d.Stderr = os.Stderr
		if err := d.Start(); err != nil {
			t.Fatal(err)
		}
		donors = append(donors, d)
	}
	defer func() {
		for _, d := range donors {
			_ = d.Process.Kill()
			_ = d.Wait()
		}
	}()

	select {
	case err := <-serverDone:
		if err != nil {
			t.Fatalf("server exited with error: %v\n%s", err, serverOut.String())
		}
	case <-time.After(90 * time.Second):
		t.Fatalf("server did not finish in 90s; output so far:\n%s", serverOut.String())
	}

	out := serverOut.String()
	if !strings.Contains(out, "QUERY") {
		t.Errorf("server output lacks hit report:\n%s", out)
	}
	for q, members := range w.Planted {
		if !strings.Contains(out, q) {
			t.Errorf("report missing query %s", q)
		}
		if !strings.Contains(out, members[0]) {
			t.Errorf("report missing planted homolog %s for %s", members[0], q)
		}
	}
}

// freeAddr reserves a loopback port and returns host:port.
func freeAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// waitForListener polls until the server's RPC port accepts connections.
func waitForListener(t *testing.T, addr string) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		conn, err := net.DialTimeout("tcp", addr, time.Second)
		if err == nil {
			conn.Close()
			return
		}
		time.Sleep(100 * time.Millisecond)
	}
	t.Fatalf("server never listened on %s", addr)
}
